#ifndef GAB_GEN_FFT_DG_H_
#define GAB_GEN_FFT_DG_H_

#include <cstdint>

#include "gen/degree_dist.h"
#include "gen/generator.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace gab {

/// Failure-Free Trial Data Generator (FFT-DG) — the paper's Section 4.
///
/// Like LDBC-DG, generation has three steps: (1) draw per-vertex degree
/// budgets, (2) order vertices by similarity (the generator emits directly
/// in that order), (3) sample edges. Step 3 is the contribution: instead of
/// probing every candidate position and failing most probes, FFT-DG samples
/// the *gap* to the next existing forward neighbor directly from the
/// telescoping first-existing-edge distribution
///
///   Pr[first edge at distance d] = c/(c+d-1) - c/(c+d)
///
/// by drawing f in (0, 1] and computing d = floor((1/f - 1) * c) + 1, then
/// updating c += d (c always equals the distance already covered from the
/// source vertex). Every draw yields an edge; the only wasted draws are the
/// per-vertex terminal overshoots past the group/graph boundary — hence the
/// paper's ~1.5 trials per edge versus >8 for LDBC-DG.
///
/// Density (Section 4.2.1): each gap draw replaces c with c/alpha, which
/// concentrates probability mass onto nearby vertices, so fewer degree
/// budgets are truncated by boundary overshoot and the realized edge count
/// grows with alpha (empirically ~2x per 10x, saturating at the budget sum).
///
/// Diameter (Section 4.2.2): vertices are split into
/// group_count = target_diameter / (group_diameter + 1) groups; sampled
/// edges never cross a group boundary, while chain edges (i, i+1) guarantee
/// connectivity, so the graph diameter is approximately
/// group_count * (group_diameter + 1).
struct FftDgConfig {
  VertexId num_vertices = 0;
  /// Density factor alpha >= 1 (paper: 10 for Std datasets, 1000 for Dense).
  double alpha = 10.0;
  /// Target diameter; 0 means a single group (small-world, about 6).
  uint32_t target_diameter = 0;
  /// Empirical intra-group diameter used to size groups. The paper quotes
  /// about 6 at its (much larger) scales; 4 is the calibrated value at this
  /// repository's default scales (measured diameters land within ~5% of
  /// target_diameter; see bench_ablation_generator).
  uint32_t group_diameter = 4;
  /// Per-vertex degree-budget distribution (paper step 1).
  DegreeDistConfig degrees;
  /// When non-empty (size must equal num_vertices), overrides the sampled
  /// budgets — used to fit an observed graph's degree distribution (see
  /// FitBudgetsToGraph in gen/degree_dist.h).
  std::vector<uint32_t> explicit_budgets;
  /// Emit uniform integer weights in [1, kMaxEdgeWeight].
  bool weighted = false;
  /// Hard cap on emitted edges; 0 = no cap.
  EdgeId max_edges = 0;
  uint64_t seed = 1;
};

/// Runs FFT-DG and returns the (forward-only) edge list; callers typically
/// build an undirected CsrGraph from it. Optionally reports trial/edge/time
/// statistics for the Figure 9 efficiency experiment.
///
/// Generation is chunk-parallel on DefaultPool(): fixed-grain source-vertex
/// chunks each sample from RNG streams forked off the config seed
/// (gen/streams.h), so the output is bit-identical for every GAB_THREADS.
EdgeList GenerateFftDg(const FftDgConfig& config, GenStats* stats = nullptr);

/// Fused generate→CSR fast path: streams the same per-chunk buffers
/// GenerateFftDg produces straight into GraphBuilder::GenerateToCsr,
/// skipping the flattened EdgeList, its canonicalize/dedupe sort, and the
/// symmetrized intermediate — roughly halving peak memory on the default
/// datasets. The CSR result is bit-identical to
/// GraphBuilder::Build(GenerateFftDg(config)) at every GAB_THREADS.
/// Requires max_edges == 0 (the cap needs the EdgeList path's cross-chunk
/// truncation).
CsrGraph GenerateFftDgToCsr(const FftDgConfig& config,
                            GenStats* stats = nullptr);

/// Number of vertex groups the diameter adjustment will use for a config.
uint32_t FftDgGroupCount(const FftDgConfig& config);

}  // namespace gab

#endif  // GAB_GEN_FFT_DG_H_
