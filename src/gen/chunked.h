#ifndef GAB_GEN_CHUNKED_H_
#define GAB_GEN_CHUNKED_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "gen/streams.h"
#include "graph/builder.h"
#include "graph/edge_list.h"
#include "util/threading.h"

namespace gab {

/// Internal helpers shared by the chunk-parallel generators. Generators
/// produce fixed-grain GenChunk buffers (one forked RNG stream per chunk,
/// see gen/streams.h) and either hand them to GraphBuilder::GenerateToCsr
/// (fused path) or flatten them into an EdgeList here.
namespace gen_internal {

/// Flattens per-chunk generator buffers into one EdgeList in chunk order.
/// The copy runs on DefaultPool() but the layout is a pure function of the
/// chunk sizes, so the result is bit-identical for every worker count.
/// When `max_edges` is nonzero the concatenation is truncated to exactly
/// min(total, max_edges) edges (chunks must individually respect the cap so
/// no chunk buffer grows unbounded). Every nonempty chunk must agree on
/// weightedness.
inline EdgeList AssembleChunks(VertexId num_vertices,
                               std::vector<GenChunk>&& chunks,
                               EdgeId max_edges = 0) {
  std::vector<size_t> base(chunks.size() + 1, 0);
  bool weighted = false;
  for (size_t c = 0; c < chunks.size(); ++c) {
    base[c + 1] = base[c] + chunks[c].edges.size();
    if (!chunks[c].weights.empty()) weighted = true;
  }
  size_t total = base[chunks.size()];
  if (max_edges != 0 && total > max_edges) total = max_edges;

  EdgeList out(num_vertices);
  out.mutable_edges().resize(total);
  if (weighted) out.mutable_weights().resize(total);
  DefaultPool().RunTasks(chunks.size(), [&](size_t c, size_t) {
    if (base[c] >= total) return;
    const size_t take = std::min(chunks[c].edges.size(), total - base[c]);
    std::copy_n(chunks[c].edges.begin(), take,
                out.mutable_edges().begin() + base[c]);
    if (weighted) {
      std::copy_n(chunks[c].weights.begin(), take,
                  out.mutable_weights().begin() + base[c]);
    }
  });
  return out;
}

}  // namespace gen_internal

}  // namespace gab

#endif  // GAB_GEN_CHUNKED_H_
