#ifndef GAB_GEN_CLASSIC_H_
#define GAB_GEN_CLASSIC_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace gab {

/// Classic random-graph generators (paper Section 2, "Synthetic Graph Data
/// Generators in Benchmarks"). They serve three purposes here: baselines in
/// generator tests, building blocks of the real-world proxy graph, and
/// reference points for the ablation benches.

/// Erdős–Rényi G(n, m): m edges drawn uniformly at random (no self loops;
/// duplicates are possible and removed by the builder).
EdgeList GenerateErdosRenyi(VertexId n, EdgeId m, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta. High clustering, low diameter.
EdgeList GenerateWattsStrogatz(VertexId n, uint32_t k, double beta,
                               uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
/// Produces a power-law degree distribution.
EdgeList GenerateBarabasiAlbert(VertexId n, uint32_t attach, uint64_t seed);

/// R-MAT / Kronecker-style recursive generator (Graph500's model):
/// 2^scale vertices, edge endpoints chosen by recursive quadrant descent
/// with probabilities (a, b, c, d = 1-a-b-c).
EdgeList GenerateRmat(uint32_t scale, EdgeId m, double a, double b, double c,
                      uint64_t seed);

/// The "LiveJournal proxy": an independent generator used as the
/// ground-truth target of the Table 8/9 similarity experiments (the real
/// LiveJournal snapshot is not available offline; see DESIGN.md).
/// Communities with power-law sizes are built as dense Watts–Strogatz
/// blocks, then overlaid with Barabási–Albert long-range edges — yielding
/// the high clustering + power-law degrees + small diameter mix of real
/// social networks, produced by a mechanism neither FFT-DG nor LDBC-DG uses.
struct RealWorldProxyConfig {
  VertexId num_vertices = 100000;
  /// Mean community size (community sizes are power-law distributed).
  uint32_t mean_community_size = 60;
  /// Ring-lattice half-width inside communities.
  uint32_t intra_k = 6;
  /// Rewiring probability inside communities.
  double intra_beta = 0.1;
  /// Global preferential-attachment edges per vertex.
  uint32_t global_attach = 3;
  uint64_t seed = 1;
};

/// Generates the proxy graph and, optionally, the planted community id per
/// vertex (used by the community-statistics pipeline).
EdgeList GenerateRealWorldProxy(const RealWorldProxyConfig& config,
                                std::vector<uint32_t>* community_of = nullptr);

}  // namespace gab

#endif  // GAB_GEN_CLASSIC_H_
