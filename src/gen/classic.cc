#include "gen/classic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gen/chunked.h"
#include "gen/streams.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/threading.h"

namespace gab {

// All classic generators are chunk-parallel on DefaultPool() with one RNG
// stream forked off the config seed per fixed-grain chunk (gen/streams.h),
// except the preferential-attachment loops (Barabási–Albert and the proxy
// overlay), which are inherently sequential — each new edge changes the
// sampling distribution of the next — and therefore run *chunk-serialized*:
// draws still come from per-chunk forked streams and land in per-chunk
// buffers, and only the finalization copy runs in parallel. Output is
// bit-identical for every GAB_THREADS in all cases.

EdgeList GenerateErdosRenyi(VertexId n, EdgeId m, uint64_t seed) {
  GAB_CHECK(n >= 2);
  GAB_SPAN("gen.er");
  Rng root(seed);
  const size_t grain = gen_streams::kEdgeChunkGrain;
  const size_t num_chunks = gen_streams::ChunkCount(m, grain);
  std::vector<GenChunk> chunks(num_chunks);
  {
    GAB_SPAN("gen.er.sample");
    DefaultPool().RunTasks(num_chunks, [&](size_t c, size_t) {
      Rng rng = root.ForkStream(gen_streams::kTopologyBase + c);
      const EdgeId begin = c * grain;
      const EdgeId end = std::min<EdgeId>(m, begin + grain);
      chunks[c].edges.reserve(end - begin);
      for (EdgeId i = begin; i < end; ++i) {
        VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        while (v == u) v = static_cast<VertexId>(rng.NextBounded(n));
        chunks[c].edges.push_back({u, v});
      }
    });
  }
  GAB_SPAN("gen.er.assemble");
  return gen_internal::AssembleChunks(n, std::move(chunks));
}

EdgeList GenerateWattsStrogatz(VertexId n, uint32_t k, double beta,
                               uint64_t seed) {
  GAB_CHECK(n >= 2);
  GAB_CHECK(k >= 1);
  GAB_SPAN("gen.ws");
  Rng root(seed);
  const size_t grain = gen_streams::kVertexChunkGrain;
  const size_t num_chunks = gen_streams::ChunkCount(n, grain);
  std::vector<GenChunk> chunks(num_chunks);
  {
    GAB_SPAN("gen.ws.sample");
    DefaultPool().RunTasks(num_chunks, [&](size_t c, size_t) {
      Rng rng = root.ForkStream(gen_streams::kTopologyBase + c);
      const size_t begin = c * grain;
      const size_t end = std::min<size_t>(n, begin + grain);
      chunks[c].edges.reserve((end - begin) * k);
      for (size_t uv = begin; uv < end; ++uv) {
        const VertexId u = static_cast<VertexId>(uv);
        for (uint32_t d = 1; d <= k; ++d) {
          VertexId v = static_cast<VertexId>((u + d) % n);
          if (rng.NextUnit() < beta) {
            // Rewire to a uniform random target.
            v = static_cast<VertexId>(rng.NextBounded(n));
            while (v == u) v = static_cast<VertexId>(rng.NextBounded(n));
          }
          chunks[c].edges.push_back({u, v});
        }
      }
    });
  }
  GAB_SPAN("gen.ws.assemble");
  return gen_internal::AssembleChunks(n, std::move(chunks));
}

EdgeList GenerateBarabasiAlbert(VertexId n, uint32_t attach, uint64_t seed) {
  GAB_CHECK(n >= 2);
  GAB_CHECK(attach >= 1);
  GAB_SPAN("gen.ba");
  Rng root(seed);
  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is degree-proportional sampling — the standard BA trick.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * attach * 2);

  // Seed clique over the first attach+1 vertices (chunk 0 of the output).
  const VertexId seed_size = std::min<VertexId>(n, attach + 1);
  const size_t grain = gen_streams::kVertexChunkGrain;
  const size_t attach_chunks =
      gen_streams::ChunkCount(n - seed_size, grain);
  std::vector<GenChunk> chunks(1 + attach_chunks);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      chunks[0].edges.push_back({u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  // Chunk-serialized preferential attachment: the loop itself must stay
  // sequential (every accepted edge reweights the distribution), but each
  // chunk draws from its own forked stream into its own buffer, so the
  // realization is identical to what a future parallel sampler over the
  // same streams would need, and finalization below is a parallel copy.
  {
    GAB_SPAN("gen.ba.attach");
    for (size_t c = 0; c < attach_chunks; ++c) {
      Rng rng = root.ForkStream(gen_streams::kTopologyBase + c);
      const size_t begin = seed_size + c * grain;
      const size_t end = std::min<size_t>(n, begin + grain);
      chunks[1 + c].edges.reserve((end - begin) * attach);
      for (size_t uv = begin; uv < end; ++uv) {
        const VertexId u = static_cast<VertexId>(uv);
        for (uint32_t a = 0; a < attach; ++a) {
          VertexId v = targets[rng.NextBounded(targets.size())];
          if (v == u) v = static_cast<VertexId>(rng.NextBounded(u));
          chunks[1 + c].edges.push_back({u, v});
          targets.push_back(u);
          targets.push_back(v);
        }
      }
    }
  }
  GAB_SPAN("gen.ba.assemble");
  return gen_internal::AssembleChunks(n, std::move(chunks));
}

EdgeList GenerateRmat(uint32_t scale, EdgeId m, double a, double b, double c,
                      uint64_t seed) {
  GAB_CHECK(scale >= 1 && scale < 31);
  double d = 1.0 - a - b - c;
  GAB_CHECK(d >= 0.0);
  GAB_SPAN("gen.rmat");
  Rng root(seed);
  const VertexId n = VertexId{1} << scale;
  const size_t grain = gen_streams::kEdgeChunkGrain;
  const size_t num_chunks = gen_streams::ChunkCount(m, grain);
  std::vector<GenChunk> chunks(num_chunks);
  {
    GAB_SPAN("gen.rmat.sample");
    DefaultPool().RunTasks(num_chunks, [&](size_t chunk, size_t) {
      Rng rng = root.ForkStream(gen_streams::kTopologyBase + chunk);
      const EdgeId begin = chunk * grain;
      const EdgeId end = std::min<EdgeId>(m, begin + grain);
      chunks[chunk].edges.reserve(end - begin);
      for (EdgeId i = begin; i < end; ++i) {
        VertexId u = 0;
        VertexId v = 0;
        for (uint32_t bit = 0; bit < scale; ++bit) {
          double r = rng.NextUnit();
          // Quadrant choice: (0,0) w.p. a, (0,1) w.p. b, (1,0) w.p. c,
          // else (1,1).
          uint32_t ubit = (r >= a + b) ? 1 : 0;
          uint32_t vbit = (r >= a && r < a + b) || (r >= a + b + c) ? 1 : 0;
          u = (u << 1) | ubit;
          v = (v << 1) | vbit;
        }
        if (u == v) {
          v ^= 1;  // deterministic self-loop fixup
        }
        chunks[chunk].edges.push_back({u, v});
      }
    });
  }
  GAB_SPAN("gen.rmat.assemble");
  return gen_internal::AssembleChunks(n, std::move(chunks));
}

EdgeList GenerateRealWorldProxy(const RealWorldProxyConfig& config,
                                std::vector<uint32_t>* community_of) {
  const VertexId n = config.num_vertices;
  GAB_CHECK(n >= 16);
  GAB_SPAN("gen.proxy");
  Rng root(config.seed);

  // Phase 1 (sequential, one draw per community): carve [0, n) into
  // contiguous communities with power-law sizes around mean_community_size
  // (exponent 2.5, min size 8), from a dedicated carving stream.
  std::vector<VertexId> community_start;
  std::vector<VertexId> community_size;
  {
    GAB_SPAN("gen.proxy.carve");
    Rng carve = root.ForkStream(gen_streams::kTopologyBase);
    VertexId pos = 0;
    const double gamma = 2.5;
    const uint32_t min_size = 8;
    while (pos < n) {
      double u = carve.NextUnitOpenClosed();
      double raw = static_cast<double>(min_size) *
                   std::pow(u, -1.0 / (gamma - 1.0));
      // Scale so the mean lands near mean_community_size:
      // E[pareto(min=8, gamma=2.5)] = 8 * 1.5 / 0.5 = 24.
      raw *= static_cast<double>(config.mean_community_size) / 24.0;
      VertexId size = static_cast<VertexId>(
          std::min<double>(raw, static_cast<double>(n) / 4));
      if (size < min_size) size = min_size;
      if (pos + size > n) size = n - pos;
      community_start.push_back(pos);
      community_size.push_back(size);
      pos += size;
    }
  }
  const size_t num_communities = community_start.size();
  if (community_of != nullptr) community_of->assign(n, 0);

  // Phase 2 (parallel, one stream per community): intra-community
  // Watts–Strogatz ring with rewiring *inside* the community — high
  // clustering, community-local. Communities own disjoint vertex ranges,
  // so community_of writes never collide.
  std::vector<GenChunk> intra(num_communities);
  {
    GAB_SPAN("gen.proxy.intra");
    DefaultPool().RunTasks(num_communities, [&](size_t k, size_t) {
      Rng rng = root.ForkStream(gen_streams::kCommunityBase + k);
      const VertexId pos = community_start[k];
      const VertexId size = community_size[k];
      for (VertexId i = 0; i < size; ++i) {
        VertexId u_local = pos + i;
        if (community_of != nullptr) {
          (*community_of)[u_local] = static_cast<uint32_t>(k);
        }
        for (uint32_t dd = 1; dd <= config.intra_k && dd < size; ++dd) {
          VertexId v_local = pos + (i + dd) % size;
          if (rng.NextUnit() < config.intra_beta && size > 2) {
            v_local = pos + static_cast<VertexId>(rng.NextBounded(size));
            while (v_local == u_local) {
              v_local = pos + static_cast<VertexId>(rng.NextBounded(size));
            }
          }
          if (u_local < v_local) intra[k].edges.push_back({u_local, v_local});
          else if (v_local < u_local) {
            intra[k].edges.push_back({v_local, u_local});
          }
        }
      }
    });
  }

  // Degree-proportional target pool seeded from the intra edges in
  // deterministic community order (parallel copy over chunk prefix sums).
  std::vector<VertexId> targets;
  {
    std::vector<size_t> base(num_communities + 1, 0);
    for (size_t k = 0; k < num_communities; ++k) {
      base[k + 1] = base[k] + intra[k].edges.size();
    }
    targets.resize(2 * base[num_communities]);
    targets.reserve(2 * base[num_communities] +
                    static_cast<size_t>(n) * config.global_attach * 2);
    DefaultPool().RunTasks(num_communities, [&](size_t k, size_t) {
      for (size_t i = 0; i < intra[k].edges.size(); ++i) {
        targets[2 * (base[k] + i)] = intra[k].edges[i].src;
        targets[2 * (base[k] + i) + 1] = intra[k].edges[i].dst;
      }
    });
  }

  // Phase 3 (chunk-serialized, like Barabási–Albert): global
  // preferential-attachment overlay — power-law hubs + small diameter.
  const size_t grain = gen_streams::kVertexChunkGrain;
  const size_t overlay_chunks = gen_streams::ChunkCount(n, grain);
  std::vector<GenChunk> overlay(overlay_chunks);
  {
    GAB_SPAN("gen.proxy.overlay");
    for (size_t c = 0; c < overlay_chunks; ++c) {
      Rng rng = root.ForkStream(gen_streams::kOverlayBase + c);
      const size_t begin = c * grain;
      const size_t end = std::min<size_t>(n, begin + grain);
      for (size_t uv = begin; uv < end; ++uv) {
        const VertexId u = static_cast<VertexId>(uv);
        for (uint32_t a = 0; a < config.global_attach; ++a) {
          VertexId v = targets[rng.NextBounded(targets.size())];
          if (v == u) continue;
          overlay[c].edges.push_back({std::min(u, v), std::max(u, v)});
          targets.push_back(u);
          targets.push_back(v);
        }
      }
    }
  }

  // Phase 4: parallel finalization — intra blocks then overlay chunks, in
  // deterministic order.
  GAB_SPAN("gen.proxy.assemble");
  std::vector<GenChunk> all;
  all.reserve(num_communities + overlay_chunks);
  for (auto& chunk : intra) all.push_back(std::move(chunk));
  for (auto& chunk : overlay) all.push_back(std::move(chunk));
  return gen_internal::AssembleChunks(n, std::move(all));
}

}  // namespace gab
