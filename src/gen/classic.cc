#include "gen/classic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace gab {

EdgeList GenerateErdosRenyi(VertexId n, EdgeId m, uint64_t seed) {
  GAB_CHECK(n >= 2);
  Rng rng(seed);
  EdgeList edges(n);
  edges.Reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    while (v == u) v = static_cast<VertexId>(rng.NextBounded(n));
    edges.AddEdge(u, v);
  }
  return edges;
}

EdgeList GenerateWattsStrogatz(VertexId n, uint32_t k, double beta,
                               uint64_t seed) {
  GAB_CHECK(n >= 2);
  GAB_CHECK(k >= 1);
  Rng rng(seed);
  EdgeList edges(n);
  edges.Reserve(static_cast<size_t>(n) * k);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t d = 1; d <= k; ++d) {
      VertexId v = static_cast<VertexId>((u + d) % n);
      if (rng.NextUnit() < beta) {
        // Rewire to a uniform random target.
        v = static_cast<VertexId>(rng.NextBounded(n));
        while (v == u) v = static_cast<VertexId>(rng.NextBounded(n));
      }
      edges.AddEdge(u, v);
    }
  }
  return edges;
}

EdgeList GenerateBarabasiAlbert(VertexId n, uint32_t attach, uint64_t seed) {
  GAB_CHECK(n >= 2);
  GAB_CHECK(attach >= 1);
  Rng rng(seed);
  EdgeList edges(n);
  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is degree-proportional sampling — the standard BA trick.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * attach * 2);
  // Seed clique over the first attach+1 vertices.
  VertexId seed_size = std::min<VertexId>(n, attach + 1);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId u = seed_size; u < n; ++u) {
    for (uint32_t a = 0; a < attach; ++a) {
      VertexId v = targets[rng.NextBounded(targets.size())];
      if (v == u) v = static_cast<VertexId>(rng.NextBounded(u));
      edges.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  edges.set_num_vertices(n);
  return edges;
}

EdgeList GenerateRmat(uint32_t scale, EdgeId m, double a, double b, double c,
                      uint64_t seed) {
  GAB_CHECK(scale >= 1 && scale < 31);
  double d = 1.0 - a - b - c;
  GAB_CHECK(d >= 0.0);
  Rng rng(seed);
  VertexId n = VertexId{1} << scale;
  EdgeList edges(n);
  edges.Reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextUnit();
      // Quadrant choice: (0,0) w.p. a, (0,1) w.p. b, (1,0) w.p. c, else (1,1).
      uint32_t ubit = (r >= a + b) ? 1 : 0;
      uint32_t vbit = (r >= a && r < a + b) || (r >= a + b + c) ? 1 : 0;
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    if (u == v) {
      v ^= 1;  // deterministic self-loop fixup
    }
    edges.AddEdge(u, v);
  }
  edges.set_num_vertices(n);
  return edges;
}

EdgeList GenerateRealWorldProxy(const RealWorldProxyConfig& config,
                                std::vector<uint32_t>* community_of) {
  const VertexId n = config.num_vertices;
  GAB_CHECK(n >= 16);
  Rng rng(config.seed);
  EdgeList edges(n);

  // Carve [0, n) into contiguous communities with power-law sizes around
  // mean_community_size (exponent 2.5, min size 8).
  std::vector<VertexId> community_start;
  if (community_of != nullptr) community_of->assign(n, 0);
  VertexId pos = 0;
  uint32_t community = 0;
  const double gamma = 2.5;
  const uint32_t min_size = 8;
  while (pos < n) {
    double u = rng.NextUnitOpenClosed();
    double raw = static_cast<double>(min_size) *
                 std::pow(u, -1.0 / (gamma - 1.0));
    // Scale so the mean lands near mean_community_size:
    // E[pareto(min=8, gamma=2.5)] = 8 * 1.5 / 0.5 = 24.
    raw *= static_cast<double>(config.mean_community_size) / 24.0;
    VertexId size = static_cast<VertexId>(
        std::min<double>(raw, static_cast<double>(n) / 4));
    if (size < min_size) size = min_size;
    if (pos + size > n) size = n - pos;
    community_start.push_back(pos);

    // Intra-community Watts–Strogatz ring with rewiring *inside* the
    // community: high clustering, community-local.
    for (VertexId i = 0; i < size; ++i) {
      VertexId u_local = pos + i;
      if (community_of != nullptr) (*community_of)[u_local] = community;
      for (uint32_t dd = 1; dd <= config.intra_k && dd < size; ++dd) {
        VertexId v_local = pos + (i + dd) % size;
        if (rng.NextUnit() < config.intra_beta && size > 2) {
          v_local = pos + static_cast<VertexId>(rng.NextBounded(size));
          while (v_local == u_local) {
            v_local = pos + static_cast<VertexId>(rng.NextBounded(size));
          }
        }
        if (u_local < v_local) edges.AddEdge(u_local, v_local);
        else if (v_local < u_local) edges.AddEdge(v_local, u_local);
      }
    }
    pos += size;
    ++community;
  }

  // Global preferential-attachment overlay: power-law hubs + small diameter.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * config.global_attach * 2);
  for (const Edge& e : edges.edges()) {
    targets.push_back(e.src);
    targets.push_back(e.dst);
  }
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t a = 0; a < config.global_attach; ++a) {
      VertexId v = targets[rng.NextBounded(targets.size())];
      if (v == u) continue;
      edges.AddEdge(std::min(u, v), std::max(u, v));
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  edges.set_num_vertices(n);
  return edges;
}

}  // namespace gab
