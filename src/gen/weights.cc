#include "gen/weights.h"

#include <algorithm>

#include "gen/streams.h"
#include "obs/telemetry.h"
#include "util/rng.h"
#include "util/threading.h"

namespace gab {

void AssignUniformWeights(EdgeList* edges, uint64_t seed) {
  if (edges->has_weights()) return;
  GAB_SPAN("gen.weights.assign");
  // Weights draw from dedicated forked streams (gen_streams::kWeightBase),
  // never from the raw seed's root sequence, so assigning weights cannot
  // perturb any topology RNG that shares the seed — and each fixed-grain
  // edge chunk owns its own stream, so the assignment is parallel yet
  // bit-identical for every GAB_THREADS.
  Rng root(seed);
  auto& weights = edges->mutable_weights();
  weights.resize(edges->num_edges());
  const size_t grain = gen_streams::kEdgeChunkGrain;
  const size_t num_chunks = gen_streams::ChunkCount(weights.size(), grain);
  DefaultPool().RunTasks(num_chunks, [&](size_t c, size_t) {
    Rng rng = root.ForkStream(gen_streams::kWeightBase + c);
    const size_t begin = c * grain;
    const size_t end = std::min<size_t>(weights.size(), begin + grain);
    for (size_t i = begin; i < end; ++i) {
      weights[i] = static_cast<Weight>(rng.NextBounded(kMaxEdgeWeight) + 1);
    }
  });
}

}  // namespace gab
