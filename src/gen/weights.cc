#include "gen/weights.h"

#include "util/rng.h"

namespace gab {

void AssignUniformWeights(EdgeList* edges, uint64_t seed) {
  if (edges->has_weights()) return;
  Rng rng(seed);
  auto& weights = edges->mutable_weights();
  weights.resize(edges->num_edges());
  for (auto& w : weights) {
    w = static_cast<Weight>(rng.NextBounded(kMaxEdgeWeight) + 1);
  }
}

}  // namespace gab
