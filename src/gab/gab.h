#ifndef GAB_GAB_H_
#define GAB_GAB_H_

/// Umbrella header for the GABench library: the graph analytics benchmark
/// of "Revisiting Graph Analytics Benchmark" (SIGMOD 2025), reimplemented
/// as a self-contained C++20 library. Include subsystem headers directly
/// in performance-sensitive code; this header is for examples and quick
/// starts.

#include "algos/bc.h"                    // IWYU pragma: export
#include "algos/bfs.h"                   // IWYU pragma: export
#include "algos/core_decomposition.h"    // IWYU pragma: export
#include "algos/kclique.h"               // IWYU pragma: export
#include "algos/lcc.h"                   // IWYU pragma: export
#include "algos/lpa.h"                   // IWYU pragma: export
#include "algos/pagerank.h"              // IWYU pragma: export
#include "algos/sssp.h"                  // IWYU pragma: export
#include "algos/triangle_count.h"        // IWYU pragma: export
#include "algos/verify.h"                // IWYU pragma: export
#include "algos/wcc.h"                   // IWYU pragma: export
#include "gen/classic.h"                 // IWYU pragma: export
#include "gen/datasets.h"                // IWYU pragma: export
#include "gen/fft_dg.h"                  // IWYU pragma: export
#include "gen/ldbc_dg.h"                 // IWYU pragma: export
#include "gen/weights.h"                 // IWYU pragma: export
#include "graph/adjacency_codec.h"       // IWYU pragma: export
#include "graph/builder.h"               // IWYU pragma: export
#include "graph/compressed_csr.h"        // IWYU pragma: export
#include "graph/csr_graph.h"             // IWYU pragma: export
#include "graph/graph_view.h"            // IWYU pragma: export
#include "graph/io.h"                    // IWYU pragma: export
#include "graph/ooc_csr.h"               // IWYU pragma: export
#include "graph/relabel.h"               // IWYU pragma: export
#include "graph/shard_cache.h"           // IWYU pragma: export
#include "obs/exporters.h"               // IWYU pragma: export
#include "obs/run_report.h"              // IWYU pragma: export
#include "obs/telemetry.h"               // IWYU pragma: export
#include "platforms/platform.h"          // IWYU pragma: export
#include "platforms/registry.h"          // IWYU pragma: export
#include "runtime/cluster_sim.h"         // IWYU pragma: export
#include "runtime/executor.h"            // IWYU pragma: export
#include "runtime/fault.h"               // IWYU pragma: export
#include "runtime/metrics.h"             // IWYU pragma: export
#include "runtime/stress.h"              // IWYU pragma: export
#include "stats/community.h"             // IWYU pragma: export
#include "stats/correlation.h"           // IWYU pragma: export
#include "stats/divergence.h"            // IWYU pragma: export
#include "stats/graph_stats.h"           // IWYU pragma: export
#include "usability/framework.h"         // IWYU pragma: export
#include "util/exec_mode.h"              // IWYU pragma: export
#include "util/table.h"                  // IWYU pragma: export

#endif  // GAB_GAB_H_
