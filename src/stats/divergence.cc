#include "stats/divergence.h"

#include <cmath>

#include "util/logging.h"

namespace gab {

namespace {

constexpr double kLog2 = 0.6931471805599453;

}  // namespace

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  GAB_CHECK(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    double qi = q[i] > 0.0 ? q[i] : 1e-12;
    kl += p[i] * std::log(p[i] / qi);
  }
  return kl / kLog2;
}

double JsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  GAB_CHECK(p.size() == q.size());
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

double JsDivergence(const Histogram& a, const Histogram& b) {
  GAB_CHECK(a.num_bins() == b.num_bins());
  return JsDivergence(a.Normalized(), b.Normalized());
}

}  // namespace gab
