#ifndef GAB_STATS_CORRELATION_H_
#define GAB_STATS_CORRELATION_H_

#include <vector>

namespace gab {

/// Fractional ranks (average rank for ties), 1-based.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Pearson correlation coefficient of two equal-length samples.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman's rank correlation (rho), the paper's measure of agreement
/// between LLM-based and human usability rankings (Section 8.4: 0.75 for
/// Intermediate, 0.714 for Senior).
double SpearmanRho(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace gab

#endif  // GAB_STATS_CORRELATION_H_
