#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace gab {

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank over the tie run [i, j] (1-based ranks).
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  GAB_CHECK(x.size() == y.size());
  GAB_CHECK(!x.empty());
  const double n = static_cast<double>(x.size());
  double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanRho(const std::vector<double>& x,
                   const std::vector<double>& y) {
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

}  // namespace gab
