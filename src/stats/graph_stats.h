#ifndef GAB_STATS_GRAPH_STATS_H_
#define GAB_STATS_GRAPH_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Undirected graph density: m / (n * (n-1) / 2), as reported in Table 4.
double GraphDensity(const CsrGraph& g);

/// Summary of the degree distribution.
struct DegreeSummary {
  double mean = 0;
  uint64_t max = 0;
  uint64_t median = 0;
};
DegreeSummary SummarizeDegrees(const CsrGraph& g);

/// Exact triangle count of an undirected graph (forward/neighbor
/// intersection over sorted adjacency lists). Single-threaded reference;
/// the parallel platform implementations live in src/platforms/.
uint64_t CountTrianglesSequential(const CsrGraph& g);

/// Per-vertex count of triangles incident to the vertex.
std::vector<uint64_t> TrianglesPerVertex(const CsrGraph& g);

/// Global clustering coefficient: 3 * triangles / open-or-closed wedges.
double GlobalClusteringCoefficient(const CsrGraph& g);

/// Average of per-vertex local clustering coefficients.
double AverageLocalClusteringCoefficient(const CsrGraph& g);

/// Approximate diameter by iterated double-sweep BFS (exact lower bound;
/// tight on small-world graphs). Ignores edge weights and direction.
uint32_t ApproxDiameter(const CsrGraph& g, uint32_t sweeps = 4);

/// Connected-component label per vertex (union-find; labels are the
/// smallest vertex id in the component).
std::vector<VertexId> ConnectedComponentLabels(const CsrGraph& g);

/// Conductance of the vertex set S: cut(S, V\S) / min(vol(S), vol(V\S)).
/// in_set must have g.num_vertices() entries.
double Conductance(const CsrGraph& g, const std::vector<bool>& in_set);

/// Bridge edges (removal disconnects the graph) via iterative Tarjan
/// low-link. Returns (u, v) pairs with u < v.
std::vector<Edge> FindBridges(const CsrGraph& g);

/// Induced subgraph over `vertices` (ids are remapped to 0..k-1 in the
/// order given; duplicate ids are not allowed). Weights are dropped.
CsrGraph InducedSubgraph(const CsrGraph& g, std::span<const VertexId> vertices);

}  // namespace gab

#endif  // GAB_STATS_GRAPH_STATS_H_
