#ifndef GAB_STATS_DIVERGENCE_H_
#define GAB_STATS_DIVERGENCE_H_

#include <vector>

#include "util/histogram.h"

namespace gab {

/// Kullback–Leibler divergence KL(p || q) in bits. Zero-probability q bins
/// are smoothed; inputs must be equal-length distributions summing to ~1.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Jensen–Shannon divergence in bits: bounded to [0, 1], symmetric. This is
/// the similarity measure of the paper's Table 8.
double JsDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// JSD of two histograms binned over the same range.
double JsDivergence(const Histogram& a, const Histogram& b);

}  // namespace gab

#endif  // GAB_STATS_DIVERGENCE_H_
