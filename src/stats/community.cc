#include "stats/community.h"

#include <algorithm>
#include <unordered_map>

#include "stats/graph_stats.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gab {

const char* CommunityMetricName(CommunityMetric metric) {
  switch (metric) {
    case CommunityMetric::kClusteringCoefficient:
      return "CC";
    case CommunityMetric::kTriangleParticipation:
      return "TPR";
    case CommunityMetric::kBridgeRatio:
      return "BR";
    case CommunityMetric::kDiameter:
      return "Diam";
    case CommunityMetric::kConductance:
      return "Cond";
    case CommunityMetric::kSize:
      return "Size";
  }
  return "?";
}

double CommunityMetricValue(const CommunityStats& stats,
                            CommunityMetric metric) {
  switch (metric) {
    case CommunityMetric::kClusteringCoefficient:
      return stats.clustering_coefficient;
    case CommunityMetric::kTriangleParticipation:
      return stats.triangle_participation;
    case CommunityMetric::kBridgeRatio:
      return stats.bridge_ratio;
    case CommunityMetric::kDiameter:
      return stats.diameter;
    case CommunityMetric::kConductance:
      return stats.conductance;
    case CommunityMetric::kSize:
      return stats.size;
  }
  return 0;
}

std::vector<uint32_t> DetectCommunitiesLpa(const CsrGraph& g,
                                           uint32_t max_iterations,
                                           uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  Rng rng(seed);

  std::vector<uint32_t> next(n);
  std::unordered_map<uint32_t, uint32_t> freq;
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    size_t changed = 0;
    for (VertexId v = 0; v < n; ++v) {
      auto nbrs = g.OutNeighbors(v);
      if (nbrs.empty()) {
        next[v] = label[v];
        continue;
      }
      freq.clear();
      uint32_t best_label = label[v];
      uint32_t best_count = 0;
      for (VertexId u : nbrs) {
        uint32_t c = ++freq[label[u]];
        // Tie-break toward the smaller label for determinism.
        if (c > best_count || (c == best_count && label[u] < best_label)) {
          best_count = c;
          best_label = label[u];
        }
      }
      next[v] = best_label;
      if (next[v] != label[v]) ++changed;
    }
    label.swap(next);
    if (changed == 0) break;
  }
  return label;
}

std::vector<CommunityStats> ComputeCommunityStats(
    const CsrGraph& g, const std::vector<uint32_t>& community_of,
    size_t min_size, size_t max_communities) {
  GAB_CHECK(community_of.size() == g.num_vertices());

  // Group members per community.
  std::unordered_map<uint32_t, std::vector<VertexId>> members;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    members[community_of[v]].push_back(v);
  }
  // Largest communities first, capped at max_communities.
  std::vector<const std::vector<VertexId>*> selected;
  for (const auto& [id, vs] : members) {
    if (vs.size() >= min_size) selected.push_back(&vs);
  }
  std::sort(selected.begin(), selected.end(),
            [](const auto* a, const auto* b) {
              if (a->size() != b->size()) return a->size() > b->size();
              return (*a)[0] < (*b)[0];  // deterministic tie-break
            });
  if (selected.size() > max_communities) selected.resize(max_communities);

  std::vector<bool> in_set(g.num_vertices(), false);
  std::vector<CommunityStats> out;
  out.reserve(selected.size());
  for (const auto* vs : selected) {
    CsrGraph sub = InducedSubgraph(g, *vs);
    CommunityStats s;
    s.size = static_cast<double>(vs->size());
    s.clustering_coefficient = AverageLocalClusteringCoefficient(sub);
    std::vector<uint64_t> tri = TrianglesPerVertex(sub);
    size_t participating = 0;
    for (uint64_t t : tri) {
      if (t > 0) ++participating;
    }
    s.triangle_participation =
        static_cast<double>(participating) / static_cast<double>(tri.size());
    std::vector<Edge> bridges = FindBridges(sub);
    s.bridge_ratio = sub.num_edges() == 0
                         ? 0.0
                         : static_cast<double>(bridges.size()) /
                               static_cast<double>(sub.num_edges());
    s.diameter = static_cast<double>(ApproxDiameter(sub));
    for (VertexId v : *vs) in_set[v] = true;
    s.conductance = Conductance(g, in_set);
    for (VertexId v : *vs) in_set[v] = false;
    out.push_back(s);
  }
  return out;
}

}  // namespace gab
