#include "stats/graph_stats.h"

#include <algorithm>
#include <queue>

#include "graph/builder.h"
#include "util/logging.h"

namespace gab {

double GraphDensity(const CsrGraph& g) {
  double n = static_cast<double>(g.num_vertices());
  if (n < 2) return 0.0;
  return static_cast<double>(g.num_edges()) / (n * (n - 1.0) / 2.0);
}

DegreeSummary SummarizeDegrees(const CsrGraph& g) {
  DegreeSummary s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  std::vector<uint64_t> degrees(n);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = g.OutDegree(v);
    total += degrees[v];
    s.max = std::max<uint64_t>(s.max, degrees[v]);
  }
  s.mean = static_cast<double>(total) / static_cast<double>(n);
  std::nth_element(degrees.begin(), degrees.begin() + n / 2, degrees.end());
  s.median = degrees[n / 2];
  return s;
}

namespace {

// Intersection size of two sorted spans.
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

uint64_t CountTrianglesSequential(const CsrGraph& g) {
  GAB_CHECK(g.is_undirected());
  uint64_t triangles = 0;
  // Each triangle {u < v < w} counted once: for edge (u, v) with u < v,
  // intersect the higher-id parts of both adjacency lists.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nu = g.OutNeighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      auto nv = g.OutNeighbors(v);
      // Count common neighbors w with w > v.
      size_t ui = std::upper_bound(nu.begin(), nu.end(), v) - nu.begin();
      size_t vi = std::upper_bound(nv.begin(), nv.end(), v) - nv.begin();
      triangles += IntersectCount(nu.subspan(ui), nv.subspan(vi));
    }
  }
  return triangles;
}

std::vector<uint64_t> TrianglesPerVertex(const CsrGraph& g) {
  GAB_CHECK(g.is_undirected());
  std::vector<uint64_t> count(g.num_vertices(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nu = g.OutNeighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      auto nv = g.OutNeighbors(v);
      size_t i = 0;
      size_t j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) {
            ++count[u];
            ++count[v];
            ++count[nu[i]];
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

double GlobalClusteringCoefficient(const CsrGraph& g) {
  uint64_t triangles = CountTrianglesSequential(g);
  uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.OutDegree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

double AverageLocalClusteringCoefficient(const CsrGraph& g) {
  std::vector<uint64_t> tri = TrianglesPerVertex(g);
  double sum = 0.0;
  VertexId counted = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.OutDegree(v);
    if (d < 2) continue;
    sum += static_cast<double>(tri[v]) /
           (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

namespace {

// BFS returning (farthest vertex, its distance); unreachable ignored.
std::pair<VertexId, uint32_t> BfsFarthest(const CsrGraph& g, VertexId source) {
  std::vector<uint32_t> dist(g.num_vertices(),
                             std::numeric_limits<uint32_t>::max());
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  VertexId farthest = source;
  uint32_t best = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] != std::numeric_limits<uint32_t>::max()) continue;
      dist[v] = dist[u] + 1;
      if (dist[v] > best) {
        best = dist[v];
        farthest = v;
      }
      queue.push(v);
    }
  }
  return {farthest, best};
}

}  // namespace

uint32_t ApproxDiameter(const CsrGraph& g, uint32_t sweeps) {
  if (g.num_vertices() == 0) return 0;
  VertexId start = 0;
  uint32_t best = 0;
  for (uint32_t s = 0; s < sweeps; ++s) {
    auto [far, d] = BfsFarthest(g, start);
    if (d <= best && s > 0) break;
    best = std::max(best, d);
    start = far;
  }
  return best;
}

std::vector<VertexId> ConnectedComponentLabels(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  // Path-halving find.
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      VertexId ru = find(u);
      VertexId rv = find(v);
      if (ru == rv) continue;
      // Union by smaller root id so labels are canonical minima.
      if (ru < rv) {
        parent[rv] = ru;
      } else {
        parent[ru] = rv;
      }
    }
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

double Conductance(const CsrGraph& g, const std::vector<bool>& in_set) {
  GAB_CHECK(in_set.size() == g.num_vertices());
  uint64_t cut = 0;
  uint64_t vol_in = 0;
  uint64_t vol_out = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    uint64_t d = g.OutDegree(u);
    if (in_set[u]) {
      vol_in += d;
      for (VertexId v : g.OutNeighbors(u)) {
        if (!in_set[v]) ++cut;
      }
    } else {
      vol_out += d;
    }
  }
  uint64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return cut == 0 ? 0.0 : 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

std::vector<Edge> FindBridges(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<Edge> bridges;
  std::vector<uint32_t> disc(n, 0);
  std::vector<uint32_t> low(n, 0);
  uint32_t timer = 0;

  // Iterative DFS; `frame` tracks (vertex, parent, next-neighbor index).
  struct Frame {
    VertexId v;
    VertexId parent;
    size_t next;
    bool skipped_parent_edge;
  };
  std::vector<Frame> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    disc[root] = low[root] = ++timer;
    stack.push_back({root, kInvalidVertex, 0, false});
    while (!stack.empty()) {
      Frame& f = stack.back();
      auto nbrs = g.OutNeighbors(f.v);
      if (f.next < nbrs.size()) {
        VertexId w = nbrs[f.next++];
        if (w == f.parent && !f.skipped_parent_edge) {
          // Skip exactly one copy of the tree edge back to the parent so
          // parallel edges are treated correctly (there are none after
          // dedupe, but multi-edge safety is cheap).
          f.skipped_parent_edge = true;
          continue;
        }
        if (disc[w] == 0) {
          disc[w] = low[w] = ++timer;
          stack.push_back({w, f.v, 0, false});
        } else {
          low[f.v] = std::min(low[f.v], disc[w]);
        }
      } else {
        VertexId v = f.v;
        VertexId p = f.parent;
        stack.pop_back();
        if (p != kInvalidVertex) {
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) {
            bridges.push_back({std::min(p, v), std::max(p, v)});
          }
        }
      }
    }
  }
  return bridges;
}

CsrGraph InducedSubgraph(const CsrGraph& g,
                         std::span<const VertexId> vertices) {
  std::vector<VertexId> remap(g.num_vertices(), kInvalidVertex);
  for (size_t i = 0; i < vertices.size(); ++i) {
    GAB_CHECK(remap[vertices[i]] == kInvalidVertex);
    remap[vertices[i]] = static_cast<VertexId>(i);
  }
  EdgeList edges(static_cast<VertexId>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    VertexId u = vertices[i];
    for (VertexId v : g.OutNeighbors(u)) {
      VertexId rv = remap[v];
      if (rv == kInvalidVertex) continue;
      // Add each undirected edge once (the builder re-symmetrizes).
      if (static_cast<VertexId>(i) < rv) {
        edges.AddEdge(static_cast<VertexId>(i), rv);
      }
    }
  }
  edges.set_num_vertices(static_cast<VertexId>(vertices.size()));
  return GraphBuilder::Build(std::move(edges));
}

}  // namespace gab
