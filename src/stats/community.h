#ifndef GAB_STATS_COMMUNITY_H_
#define GAB_STATS_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Per-community statistics used by the paper's generator-similarity
/// evaluation (Section 8.1, Figure 7, Table 8), following Prat-Pérez &
/// Dominguez-Sal's "How community-like is the structure of synthetically
/// generated graphs?" methodology.
struct CommunityStats {
  /// Average local clustering coefficient inside the community subgraph.
  double clustering_coefficient = 0;
  /// Fraction of members in at least one intra-community triangle (TPR).
  double triangle_participation = 0;
  /// Fraction of intra-community edges that are bridges (BR).
  double bridge_ratio = 0;
  /// Diameter of the community subgraph.
  double diameter = 0;
  /// Conductance of the community against the rest of the graph.
  double conductance = 0;
  /// Member count.
  double size = 0;
};

/// Column accessor used to build one histogram per statistic.
enum class CommunityMetric {
  kClusteringCoefficient = 0,
  kTriangleParticipation,
  kBridgeRatio,
  kDiameter,
  kConductance,
  kSize,
};
inline constexpr int kNumCommunityMetrics = 6;
const char* CommunityMetricName(CommunityMetric metric);
double CommunityMetricValue(const CommunityStats& stats,
                            CommunityMetric metric);

/// Detects communities with synchronous label propagation (used when no
/// planted assignment is available, e.g. on FFT-DG/LDBC-DG outputs, exactly
/// as the paper "generates communities over the social network").
std::vector<uint32_t> DetectCommunitiesLpa(const CsrGraph& g,
                                           uint32_t max_iterations,
                                           uint64_t seed);

/// Computes per-community statistics for every community with at least
/// `min_size` members, analyzing at most `max_communities` of the largest.
std::vector<CommunityStats> ComputeCommunityStats(
    const CsrGraph& g, const std::vector<uint32_t>& community_of,
    size_t min_size = 5, size_t max_communities = 2000);

}  // namespace gab

#endif  // GAB_STATS_COMMUNITY_H_
