#ifndef GAB_UTIL_THREADING_H_
#define GAB_UTIL_THREADING_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gab {

/// Fixed-size worker pool that executes batches of range tasks. A single
/// process-wide pool (see DefaultPool) backs all parallel engines; engines
/// select their logical parallelism (partitions) independently of the
/// physical worker count so traces are machine-independent.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread that joins each batch.
  size_t num_threads() const { return threads_.size() + 1; }

  /// Runs fn(task_index, worker_index) for task_index in [0, num_tasks),
  /// distributing tasks over workers; blocks until all complete. The calling
  /// thread participates as worker 0, so the pool also works single-threaded.
  ///
  /// Every task is a fault-injection point ("pool.task"): when the global
  /// FaultInjector is armed and fires, the batch still drains (so no worker
  /// is left stranded) and the first TransientFault is rethrown on the
  /// calling thread after completion — modeling a worker dying mid-batch
  /// and the runtime fencing it at the barrier.
  void RunTasks(size_t num_tasks,
                const std::function<void(size_t, size_t)>& fn);

  /// Enqueues a fire-and-forget background task (the OOC shard prefetcher's
  /// submission path). Background tasks are strictly lower priority than
  /// RunTasks batches: an idle worker drains the background queue only when
  /// no batch is runnable, so prefetch IO never delays a compute barrier.
  /// With no spawned workers (1-thread pool) the task runs inline. Every
  /// submitted task is guaranteed to execute: the destructor drains the
  /// queue on the destroying thread after joining workers. Tasks must not
  /// throw and must not call RunTasks on this pool.
  void Submit(std::function<void()> task);

 private:
  // Heap-allocated and shared with every worker that picks it up, so a
  // straggler worker observing the batch after RunTasks returned still
  // reads valid memory (it sees next_task >= num_tasks and leaves without
  // touching fn).
  struct Batch {
    size_t num_tasks = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next_task{0};
    std::atomic<size_t> done_tasks{0};
    // First injected fault observed by any worker of this batch; faulted
    // tasks still count as done so the barrier always completes.
    std::atomic<bool> faulted{false};
    const char* fault_site = nullptr;
    uint64_t fault_sequence = 0;
    // Tracer timestamp of batch publication (0 while telemetry is off);
    // lets each worker report its queue wait on first claim.
    uint64_t publish_ns = 0;
  };

  void WorkerLoop(size_t worker_index);
  void WorkOn(Batch& batch, size_t worker_index);
  /// Pops and runs queued background tasks until the queue is empty.
  /// Called with mu_ held; releases it around each task body.
  void DrainBackgroundLocked(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_;
  std::deque<std::function<void()>> background_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// Process-wide default pool, sized from GAB_THREADS (if set) or hardware
/// concurrency. Never destroyed (intentional leak per static-lifetime rules).
ThreadPool& DefaultPool();

/// Host execution environment, probed once *after* the default pool exists
/// (std::thread::hardware_concurrency can report 0/1 early in process
/// startup under restricted sandboxes, which used to leave bench reports
/// claiming "hardware_concurrency":1 next to "threads":8). cpu_affinity is
/// the schedulable-CPU count from sched_getaffinity (0 when unavailable) —
/// the number that actually bounds wall-clock speedups under taskset/cgroup
/// pinning, recorded alongside so bench metadata is trustworthy.
struct HardwareInfo {
  unsigned hardware_concurrency = 0;
  unsigned cpu_affinity = 0;
};
const HardwareInfo& ProbedHardware();

/// RAII override of DefaultPool() with a pool of `num_threads` workers.
/// Lets one process exercise the same parallel code at several thread
/// counts (the parallel-determinism tests and bench_build_pipeline compare
/// GAB_THREADS=1 against N without re-execing). Construct and destroy only
/// from the main thread with no parallel batch in flight; overrides nest.
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(size_t num_threads);
  ~ScopedThreadPool();

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* saved_;
};

/// Element-count threshold below which the data-parallel helpers run their
/// chunk loops inline instead of dispatching a pool batch: small inputs pay
/// more in batch publication (cv broadcast + barrier) than they win in
/// parallelism, which is what made t1-scale baselines overhead-bound.
/// Tunable via GAB_SERIAL_CUTOFF (elements; read once). Chunk boundaries
/// are unchanged either way, so results stay bit-identical.
size_t SerialCutoff();

/// Splits [0, n) into chunks of at most `grain` and runs body(begin, end)
/// over the default pool; below SerialCutoff() the chunks run inline on the
/// calling thread (same boundaries, same fault-injection points).
/// body must be safe to call concurrently.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// ParallelFor with one chunk per worker (grain chosen automatically).
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

/// Parallel sum-reduction of body(begin, end) partial results. Chunking
/// follows the worker count, so the floating-point result can vary between
/// thread counts; use the fixed-grain overload when it must not.
double ParallelReduceSum(size_t n,
                         const std::function<double(size_t, size_t)>& body);

/// Sum-reduction with caller-fixed chunk boundaries: partials are produced
/// per `grain`-sized chunk and combined in ascending chunk order, so the
/// result is bit-identical for every worker count.
double ParallelReduceSum(size_t n, size_t grain,
                         const std::function<double(size_t, size_t)>& body);

}  // namespace gab

#endif  // GAB_UTIL_THREADING_H_
