#ifndef GAB_UTIL_RNG_H_
#define GAB_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace gab {

/// SplitMix64: tiny, fast, statistically solid 64-bit generator. Used both
/// directly and to seed Xoshiro256**. Deterministic across platforms.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the repository's default RNG. All benchmark and generator
/// randomness flows through seeded instances of this class so every run is
/// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  /// Counter-based sub-stream derivation: returns an independent generator
  /// whose seed is a SplitMix64 mix of this generator's *seed* (not its
  /// current state) and `stream_id`. Forking is therefore a pure function
  /// of (seed, stream_id) — any chunk of work can derive its own stream in
  /// parallel, in any order, and the result never depends on how many
  /// draws other chunks made. This is what makes the parallel data
  /// generators bit-identical across GAB_THREADS (DESIGN.md §9).
  ///
  /// The double mix (constant-xor, then golden-ratio counter offset)
  /// decorrelates child streams from the parent's own Xoshiro expansion,
  /// which also seeds from SplitMix64(seed).
  Rng ForkStream(uint64_t stream_id) const {
    SplitMix64 outer(seed_ ^ 0x94d049bb133111ebULL);
    SplitMix64 inner(outer.Next() + 0x9e3779b97f4a7c15ULL * stream_id);
    return Rng(inner.Next());
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in (0, 1]: never returns 0, which makes it safe to use
  /// as the inverse-CDF input of the FFT-DG sampling formula (1/f - 1).
  double NextUnitOpenClosed() {
    // 53 random mantissa bits; add 1 ulp so the result is in (0, 1].
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1).
  double NextUnit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slight bias is
    // negligible for bounds far below 2^64, which is always the case here).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Satisfies UniformRandomBitGenerator so it plugs into <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t seed_;
  uint64_t s_[4];
};

}  // namespace gab

#endif  // GAB_UTIL_RNG_H_
