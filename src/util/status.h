#ifndef GAB_UTIL_STATUS_H_
#define GAB_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace gab {

/// Lightweight error-reporting type for fallible operations (I/O, parsing,
/// configuration validation). The library does not throw exceptions across
/// its public API; functions that can fail return Status or set one via an
/// output parameter.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kOutOfRange,
    kUnsupported,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

}  // namespace gab

#endif  // GAB_UTIL_STATUS_H_
