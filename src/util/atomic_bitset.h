#ifndef GAB_UTIL_ATOMIC_BITSET_H_
#define GAB_UTIL_ATOMIC_BITSET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/logging.h"

namespace gab {

/// Fixed-size bitset with lock-free concurrent set/test. Used for dense
/// frontier representations (Ligra-style edgeMap in pull direction) and for
/// visited flags in parallel traversals.
class AtomicBitset {
 public:
  AtomicBitset() : size_(0), num_words_(0) {}

  explicit AtomicBitset(size_t size) { Reset(size); }

  /// Re-sizes and clears all bits.
  void Reset(size_t size) {
    size_ = size;
    num_words_ = (size + 63) / 64;
    words_ = std::make_unique<std::atomic<uint64_t>[]>(num_words_);
    Clear();
  }

  void Clear() { ClearWords(0, num_words_); }

  /// Clears the word range [begin, end) — the unit parallel clears split on.
  void ClearWords(size_t begin, size_t end) {
    GAB_DCHECK(end <= num_words_);
    for (size_t i = begin; i < end; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  /// Sets every valid bit (tail bits of the last word stay clear so
  /// Count() == size()).
  void SetAll() {
    if (num_words_ == 0) return;
    for (size_t i = 0; i + 1 < num_words_; ++i) {
      words_[i].store(~uint64_t{0}, std::memory_order_relaxed);
    }
    size_t tail = size_ - (num_words_ - 1) * 64;
    uint64_t mask = tail == 64 ? ~uint64_t{0} : (uint64_t{1} << tail) - 1;
    words_[num_words_ - 1].store(mask, std::memory_order_relaxed);
  }

  size_t size() const { return size_; }
  size_t num_words() const { return num_words_; }

  /// Raw 64-bit word i (bit v lives in word v>>6); used by parallel
  /// bitmap→list packing, which scans words instead of bits.
  uint64_t Word(size_t i) const {
    GAB_DCHECK(i < num_words_);
    return words_[i].load(std::memory_order_relaxed);
  }

  bool Test(size_t i) const {
    GAB_DCHECK(i < size_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    GAB_DCHECK(i < size_);
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  /// Clears bit i. Used to restore the all-zero invariant cheaply after a
  /// sparse frontier pass (clear only the touched bits instead of every
  /// word).
  void ClearBit(size_t i) {
    GAB_DCHECK(i < size_);
    words_[i >> 6].fetch_and(~(uint64_t{1} << (i & 63)),
                             std::memory_order_relaxed);
  }

  /// Atomically sets bit i; returns true iff this call transitioned it 0→1.
  /// This is the primitive that deduplicates frontier insertions.
  bool TestAndSet(size_t i) {
    GAB_DCHECK(i < size_);
    uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Population count (single-threaded; call between parallel phases).
  size_t Count() const {
    size_t total = 0;
    for (size_t i = 0; i < num_words_; ++i) {
      total += static_cast<size_t>(
          __builtin_popcountll(words_[i].load(std::memory_order_relaxed)));
    }
    return total;
  }

 private:
  size_t size_;
  size_t num_words_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

}  // namespace gab

#endif  // GAB_UTIL_ATOMIC_BITSET_H_
