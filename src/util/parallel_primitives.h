#ifndef GAB_UTIL_PARALLEL_PRIMITIVES_H_
#define GAB_UTIL_PARALLEL_PRIMITIVES_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/threading.h"

namespace gab {

/// Header-only data-parallel building blocks for the ingest pipeline and
/// the reference kernels, all running on DefaultPool().
///
/// Every primitive here is *deterministic across worker counts*: the output
/// depends only on the input (and, where noted, on a total order), never on
/// how the work happened to be scheduled. That property is what lets the
/// parallel-determinism tests assert bit-identical CSR arrays and kernel
/// outputs for GAB_THREADS=1 vs N.

namespace internal {

/// Merge-path co-partition: for sorted runs a[0, a_len) and b[0, b_len),
/// returns i such that taking a[0, i) and b[0, k - i) yields exactly the
/// first k elements std::merge would emit (ties taken from a first).
template <typename T, typename Less>
size_t MergeSplit(const T* a, size_t a_len, const T* b, size_t b_len,
                  size_t k, Less less) {
  size_t lo = k > b_len ? k - b_len : 0;
  size_t hi = std::min(k, a_len);
  while (lo < hi) {
    size_t i = lo + (hi - lo) / 2;
    size_t j = k - i;
    // b[j-1] is emitted before a[i] only if strictly smaller (A wins ties);
    // if not, the split needs more of a.
    if (i < a_len && j > 0 && !less(b[j - 1], a[i])) {
      lo = i + 1;
    } else if (i > 0 && j < b_len && less(b[j], a[i - 1])) {
      hi = i - 1;
    } else {
      return i;
    }
  }
  return lo;
}

}  // namespace internal

/// Sorts v with chunk-sort + merge-path pairwise merging over DefaultPool().
/// The output is bit-identical to std::sort for any comparator under which
/// equivalent elements are indistinguishable (exact duplicates or a total
/// order with a tie-breaking field) — the two uses this repository has.
template <typename T, typename Less = std::less<T>>
void ParallelSort(std::vector<T>& v, Less less = Less()) {
  const size_t n = v.size();
  ThreadPool& pool = DefaultPool();
  const size_t workers = pool.num_threads();
  size_t chunks = 1;
  while (chunks < workers) chunks <<= 1;
  // Chunks below ~8K elements pay more in merge passes than they win.
  while (chunks > 1 && n / chunks < size_t{1} << 13) chunks >>= 1;
  if (chunks == 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }

  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  pool.RunTasks(chunks, [&](size_t c, size_t) {
    std::sort(v.begin() + bounds[c], v.begin() + bounds[c + 1], less);
  });

  std::vector<T> buf(n);
  T* src = v.data();
  T* dst = buf.data();
  for (size_t width = 1; width < chunks; width <<= 1) {
    const size_t pairs = chunks / (2 * width);
    const size_t ways = std::max<size_t>(1, 2 * workers / pairs);
    pool.RunTasks(pairs * ways, [&](size_t task, size_t) {
      const size_t p = task / ways;
      const size_t s = task % ways;
      const size_t a0 = bounds[p * 2 * width];
      const size_t a1 = bounds[p * 2 * width + width];
      const size_t b1 = bounds[p * 2 * width + 2 * width];
      const T* a = src + a0;
      const T* b = src + a1;
      const size_t a_len = a1 - a0;
      const size_t b_len = b1 - a1;
      const size_t total = a_len + b_len;
      const size_t k0 = total * s / ways;
      const size_t k1 = total * (s + 1) / ways;
      const size_t i0 = internal::MergeSplit(a, a_len, b, b_len, k0, less);
      const size_t i1 = internal::MergeSplit(a, a_len, b, b_len, k1, less);
      std::merge(a + i0, a + i1, b + (k0 - i0), b + (k1 - i1),
                 dst + a0 + k0, less);
    });
    std::swap(src, dst);
  }
  if (src != v.data()) {
    ParallelFor(n, [&](size_t begin, size_t end) {
      std::copy(src + begin, src + end, v.data() + begin);
    });
  }
}

/// In-place inclusive prefix sum (a[i] += a[i-1]): chunk partial sums, a
/// short sequential scan over the chunk totals, then a parallel fix-up.
template <typename T>
void ParallelInclusiveScan(std::vector<T>& a) {
  const size_t n = a.size();
  const size_t workers = DefaultPool().num_threads();
  if (n < size_t{1} << 15 || workers == 1) {
    for (size_t i = 1; i < n; ++i) a[i] += a[i - 1];
    return;
  }
  const size_t chunks = workers * 4;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  std::vector<T> base(chunks, T{});
  DefaultPool().RunTasks(chunks, [&](size_t c, size_t) {
    for (size_t i = bounds[c] + 1; i < bounds[c + 1]; ++i) a[i] += a[i - 1];
    base[c] = a[bounds[c + 1] - 1];
  });
  for (size_t c = 1; c < chunks; ++c) base[c] += base[c - 1];
  DefaultPool().RunTasks(chunks - 1, [&](size_t t, size_t) {
    const size_t c = t + 1;
    const T offset = base[c - 1];
    for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) a[i] += offset;
  });
}

/// Stable parallel compaction: emits the indices i in [0, n) with
/// keep(i) == true, in ascending order, via emit(i, output_position).
/// keep must be pure (it is evaluated twice: count, then scatter) and both
/// callbacks must be safe to call concurrently for distinct i. Returns the
/// number of kept elements; output positions are independent of the worker
/// count because they equal the rank of i among all kept indices.
template <typename Keep, typename Emit>
size_t ParallelCompact(size_t n, Keep keep, Emit emit) {
  if (n == 0) return 0;
  if (n <= SerialCutoff()) {
    // One inline pass; positions are ranks either way.
    size_t pos = 0;
    for (size_t i = 0; i < n; ++i) {
      if (keep(i)) emit(i, pos++);
    }
    return pos;
  }
  const size_t workers = DefaultPool().num_threads();
  const size_t chunks = std::min(n, workers * 4);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  std::vector<size_t> offset(chunks + 1, 0);
  DefaultPool().RunTasks(chunks, [&](size_t c, size_t) {
    size_t count = 0;
    for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      if (keep(i)) ++count;
    }
    offset[c + 1] = count;
  });
  for (size_t c = 0; c < chunks; ++c) offset[c + 1] += offset[c];
  DefaultPool().RunTasks(chunks, [&](size_t c, size_t) {
    size_t pos = offset[c];
    for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      if (keep(i)) emit(i, pos++);
    }
  });
  return offset[chunks];
}

}  // namespace gab

#endif  // GAB_UTIL_PARALLEL_PRIMITIVES_H_
