#include "util/exec_mode.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gab {

namespace {

ExecMode ModeFromEnv() {
  const char* env = std::getenv("GAB_EXEC_MODE");
  if (env == nullptr || *env == '\0') return ExecMode::kStrict;
  if (std::strcmp(env, "relaxed") == 0) return ExecMode::kRelaxed;
  if (std::strcmp(env, "strict") == 0) return ExecMode::kStrict;
  std::fprintf(stderr, "warning: unknown GAB_EXEC_MODE '%s', using strict\n",
               env);
  return ExecMode::kStrict;
}

// Mutated only from the main thread (same contract as ScopedThreadPool).
ExecMode g_mode = ModeFromEnv();

}  // namespace

ExecMode CurrentExecMode() { return g_mode; }

void SetExecMode(ExecMode mode) { g_mode = mode; }

const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kRelaxed ? "relaxed" : "strict";
}

ScopedExecMode::ScopedExecMode(ExecMode mode) : saved_(g_mode) {
  g_mode = mode;
}

ScopedExecMode::~ScopedExecMode() { g_mode = saved_; }

}  // namespace gab
