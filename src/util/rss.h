#ifndef GAB_UTIL_RSS_H_
#define GAB_UTIL_RSS_H_

#include <cstddef>

namespace gab {

/// Process-lifetime resident-set high-water mark in bytes (getrusage
/// ru_maxrss). Monotone: once any phase of the process touched N bytes the
/// probe never reports less, so order memory-sensitive phases smallest
/// first when comparing peaks (see bench_micro_generators).
size_t PeakRssBytes();

/// Current resident-set size in bytes, sampled from /proc/self/statm.
/// Unlike PeakRssBytes this goes back DOWN when memory is released, which
/// is what the OOC benches need: they free the in-memory CSR and then gate
/// the out-of-core run on the *delta* over this baseline rather than on a
/// high-water mark the build phase already inflated. Returns 0 when the
/// proc interface is unavailable (non-Linux).
size_t CurrentRssBytes();

}  // namespace gab

#endif  // GAB_UTIL_RSS_H_
