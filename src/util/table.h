#ifndef GAB_UTIL_TABLE_H_
#define GAB_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gab {

/// Plain-text aligned table printer. Every bench binary regenerating a paper
/// table/figure emits its rows through this class so output is uniform and
/// grep-friendly.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

  /// Formatting helpers used by bench binaries.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtSci(double v, int precision = 2);
  static std::string FmtCount(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a positive integer from an environment variable, or returns
/// `fallback` when unset/invalid. Benches use GAB_SCALE / GAB_TRIALS.
uint64_t EnvOr(const char* name, uint64_t fallback);

}  // namespace gab

#endif  // GAB_UTIL_TABLE_H_
