#include "util/rss.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace gab {

size_t PeakRssBytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<size_t>(ru.ru_maxrss) * 1024;  // Linux reports KiB
}

size_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0, resident_pages = 0;
  int matched = std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<size_t>(resident_pages) * static_cast<size_t>(page);
#else
  return 0;
#endif
}

}  // namespace gab
