#include "util/fault_injector.h"

#include <cstdlib>

#include "obs/telemetry.h"
#include "util/rng.h"

namespace gab {

std::atomic<bool> FaultInjector::enabled_{false};
std::atomic<int> FaultInjector::armed_{0};
std::atomic<int> FaultInjector::suppressed_{0};

FaultInjector::FaultInjector() {
  double rate = 0;
  uint64_t seed = 42;
  if (const char* env = std::getenv("GAB_FAULT_RATE")) {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v > 0) rate = v < 1.0 ? v : 1.0;
  }
  if (const char* env = std::getenv("GAB_FAULT_SEED")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) seed = v;
  }
  Configure(rate, seed);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector& injector = *new FaultInjector();
  return injector;
}

void FaultInjector::Configure(double rate, uint64_t seed) {
  rate_ = rate < 0 ? 0 : (rate > 1.0 ? 1.0 : rate);
  seed_ = seed;
  draws_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  enabled_.store(rate_ > 0, std::memory_order_relaxed);
}

bool FaultInjector::Tick(const char* /*site*/) {
  if (rate_ <= 0) return false;
  // Counter-hash draw: the n-th draw of a run is a pure function of
  // (seed, n), so a given configuration produces a reproducible fault
  // sequence by arrival order (exact thread interleaving may reorder which
  // call site sees which draw — recovery must cope with either, which is
  // the point).
  uint64_t n = draws_.fetch_add(1, std::memory_order_relaxed);
  SplitMix64 h(seed_ ^ (n * 0x9e3779b97f4a7c15ULL));
  double u = static_cast<double>(h.Next() >> 11) * 0x1.0p-53;
  return u < rate_;
}

void NoteFaultArmed() { GAB_COUNT("fault.armed", 1); }

void FaultInjector::MaybeInject(const char* site) {
  if (!Tick(site)) return;
  uint64_t sequence = injected_.fetch_add(1, std::memory_order_relaxed);
  GAB_COUNT("fault.fired", 1);
  throw TransientFault{site, sequence};
}

}  // namespace gab
