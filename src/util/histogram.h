#ifndef GAB_UTIL_HISTOGRAM_H_
#define GAB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace gab {

/// Fixed-bin histogram over a closed value range. The statistics subsystem
/// bins community statistics with a shared Histogram per metric, then
/// compares the normalized bin distributions with Jensen–Shannon divergence.
class Histogram {
 public:
  /// Bins the range [lo, hi] into `num_bins` equal-width bins.
  /// Values outside the range are clamped into the first/last bin.
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t total_count() const { return total_; }
  const std::vector<size_t>& counts() const { return counts_; }

  /// Bin index a value falls into (after clamping).
  size_t BinOf(double value) const;

  /// Probability mass per bin; all-zero histogram yields a uniform
  /// distribution so divergence against it is well defined.
  std::vector<double> Normalized() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace gab

#endif  // GAB_UTIL_HISTOGRAM_H_
