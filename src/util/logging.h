#ifndef GAB_UTIL_LOGGING_H_
#define GAB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace gab {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "GAB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace gab

/// Always-on invariant check (fires in release builds too). Benchmark code
/// must never run on top of violated invariants, so these are not compiled
/// out the way assert() is.
#define GAB_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gab::internal_logging::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                  \
  } while (0)

#define GAB_DCHECK(expr) \
  do {                   \
    if (!(expr)) {       \
    }                    \
  } while (0)

#endif  // GAB_UTIL_LOGGING_H_
