#include "util/histogram.h"

#include "util/logging.h"

namespace gab {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  GAB_CHECK(num_bins > 0);
  GAB_CHECK(hi > lo);
  width_ = (hi - lo) / static_cast<double>(num_bins);
}

size_t Histogram::BinOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  size_t bin = static_cast<size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  return bin;
}

void Histogram::Add(double value) {
  ++counts_[BinOf(value)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> p(counts_.size());
  if (total_ == 0) {
    double uniform = 1.0 / static_cast<double>(counts_.size());
    for (auto& x : p) x = uniform;
    return p;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

}  // namespace gab
