#ifndef GAB_UTIL_FAULT_INJECTOR_H_
#define GAB_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace gab {

/// Thrown by an injection point when the fault injector decides this call
/// site fails. Deliberately *not* derived from std::exception: transient
/// faults must only be caught by the recovery layers that opted in
/// (ExperimentExecutor's retry loop, tests), never by a generic handler
/// that would mask them.
struct TransientFault {
  /// Static string naming the injection site ("pool.task", "vc.superstep").
  const char* site;
  /// Global injection sequence number (diagnostic).
  uint64_t sequence;
};

/// Process-wide deterministic fault injector. Simulates transient machine
/// faults (a worker dying mid-superstep, a task segfaulting and being
/// fenced) inside the in-process engines, so the retry/recovery machinery
/// is exercised for real instead of only in the cluster simulator.
///
/// Behavior is driven by a (rate, seed) pair: every injection point draws
/// the next value of a seeded counter-hash sequence and fires when it
/// falls below `rate`. Configuration comes from the environment
/// (GAB_FAULT_RATE, GAB_FAULT_SEED) at first use or from Configure().
///
/// Injection only fires inside an *armed* region (ScopedFaultArming):
/// arming marks "a recovery layer above me will catch TransientFault and
/// retry". Code that calls engines directly — unit tests, examples —
/// therefore behaves identically whether or not GAB_FAULT_RATE is set.
/// ScopedFaultSuppression disables injection regardless of arming; the
/// retry policy uses it on the final attempt so a run always completes.
class FaultInjector {
 public:
  /// The process-wide injector, configured from GAB_FAULT_RATE (default 0)
  /// and GAB_FAULT_SEED (default 42) on first call.
  static FaultInjector& Global();

  /// Overrides rate/seed and resets the injection sequence (tests).
  void Configure(double rate, uint64_t seed);

  double rate() const { return rate_; }
  uint64_t seed() const { return seed_; }

  /// Total faults fired since construction/Configure.
  uint64_t injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Deterministically decides whether this call fires. Does not throw.
  bool Tick(const char* site);

  /// Throws TransientFault when Tick fires. The hot-path guard (enabled,
  /// armed, not suppressed) lives in the inline FaultPoint() wrapper.
  void MaybeInject(const char* site);

  /// True iff injection points are currently live (rate > 0, inside an
  /// armed region, not suppressed).
  static bool Active() {
    return enabled_.load(std::memory_order_relaxed) &&
           armed_.load(std::memory_order_relaxed) > 0 &&
           suppressed_.load(std::memory_order_relaxed) == 0;
  }

 private:
  friend class ScopedFaultArming;
  friend class ScopedFaultSuppression;

  FaultInjector();

  double rate_ = 0;
  uint64_t seed_ = 42;
  std::atomic<uint64_t> draws_{0};
  std::atomic<uint64_t> injected_{0};

  // Cheap global guards so FaultPoint() costs one relaxed load when faults
  // are off. Arming/suppression are process-wide counts (not thread-local)
  // because pool workers must observe the region opened by the caller.
  static std::atomic<bool> enabled_;
  static std::atomic<int> armed_;
  static std::atomic<int> suppressed_;
};

/// Telemetry hook (out of line so this header stays light): bumps the
/// "fault.armed" counter when an armed region opens.
void NoteFaultArmed();

/// RAII region marker: "transient faults thrown below are caught and
/// retried above". Nestable.
class ScopedFaultArming {
 public:
  ScopedFaultArming() {
    FaultInjector::armed_.fetch_add(1, std::memory_order_relaxed);
    NoteFaultArmed();
  }
  ~ScopedFaultArming() {
    FaultInjector::armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  ScopedFaultArming(const ScopedFaultArming&) = delete;
  ScopedFaultArming& operator=(const ScopedFaultArming&) = delete;
};

/// RAII suppression: wins over any arming. Used for a retry policy's final
/// attempt, guaranteeing forward progress under any injection rate.
class ScopedFaultSuppression {
 public:
  ScopedFaultSuppression() {
    FaultInjector::suppressed_.fetch_add(1, std::memory_order_relaxed);
  }
  ~ScopedFaultSuppression() {
    FaultInjector::suppressed_.fetch_sub(1, std::memory_order_relaxed);
  }
  ScopedFaultSuppression(const ScopedFaultSuppression&) = delete;
  ScopedFaultSuppression& operator=(const ScopedFaultSuppression&) = delete;
};

/// Injection point. Near-free when faults are off (one relaxed load).
/// `site` must be a string literal.
inline void FaultPoint(const char* site) {
  if (FaultInjector::Active()) FaultInjector::Global().MaybeInject(site);
}

}  // namespace gab

#endif  // GAB_UTIL_FAULT_INJECTOR_H_
