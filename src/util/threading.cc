#include "util/threading.h"

#if defined(__linux__)
#include <sched.h>
#endif

#include <atomic>
#include <cstdlib>

#include "obs/telemetry.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace gab {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  // Worker 0 is the calling thread; spawn the rest.
  for (size_t i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Guarantee every Submit()ted task runs: whatever the workers left in
  // the queue executes here on the destroying thread (callers — the shard
  // prefetcher — rely on this to drain their outstanding-task counters).
  std::unique_lock<std::mutex> lock(mu_);
  DrainBackgroundLocked(lock);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    std::function<void()> bg;
    // Time spent blocked on work_cv_ is the worker's idle gap; only timed
    // while telemetry is on (one relaxed load otherwise).
    uint64_t idle_start_ns =
        obs::Telemetry::Enabled() ? obs::SpanTracer::Global().NowNs() : 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (current_ != nullptr && generation_ != seen_generation) ||
               !background_.empty();
      });
      if (shutdown_) return;
      if (current_ != nullptr && generation_ != seen_generation) {
        // Batches always outrank background work (prefetch IO must never
        // delay a compute barrier).
        seen_generation = generation_;
        batch = current_;
      } else {
        bg = std::move(background_.front());
        background_.pop_front();
      }
    }
    if (idle_start_ns != 0) {
      GAB_HIST_US("pool.idle_us",
                  (obs::SpanTracer::Global().NowNs() - idle_start_ns) / 1e3);
    }
    if (batch != nullptr) {
      WorkOn(*batch, worker_index);
    } else {
      bg();
      GAB_COUNT("pool.background_tasks", 1);
    }
  }
}

void ThreadPool::DrainBackgroundLocked(std::unique_lock<std::mutex>& lock) {
  while (!background_.empty()) {
    std::function<void()> task = std::move(background_.front());
    background_.pop_front();
    lock.unlock();
    task();
    GAB_COUNT("pool.background_tasks", 1);
    lock.lock();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  GAB_COUNT("pool.background_submitted", 1);
  if (threads_.empty()) {
    // Single-threaded pool: no worker will ever drain the queue, so the
    // "background" task degenerates to a synchronous call.
    task();
    GAB_COUNT("pool.background_tasks", 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    background_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkOn(Batch& batch, size_t worker_index) {
  bool first_claim = true;
  while (true) {
    size_t task = batch.next_task.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch.num_tasks) break;
    uint64_t task_start_ns = 0;
    if (obs::Telemetry::Enabled()) {
      task_start_ns = obs::SpanTracer::Global().NowNs();
      if (first_claim && batch.publish_ns != 0 &&
          task_start_ns > batch.publish_ns) {
        GAB_HIST_US("pool.queue_wait_us",
                    (task_start_ns - batch.publish_ns) / 1e3);
      }
      first_claim = false;
    }
    try {
      FaultPoint("pool.task");
      (*batch.fn)(task, worker_index);
    } catch (const TransientFault& fault) {
      // A worker "dies" mid-task: record the first fault, keep draining so
      // the barrier completes, and let RunTasks rethrow on the caller.
      bool expected = false;
      if (batch.faulted.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
        batch.fault_site = fault.site;
        batch.fault_sequence = fault.sequence;
      }
    }
    if (task_start_ns != 0) {
      GAB_HIST_US("pool.task_us",
                  (obs::SpanTracer::Global().NowNs() - task_start_ns) / 1e3);
    }
    GAB_COUNT("pool.tasks", 1);
    size_t done = batch.done_tasks.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == batch.num_tasks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunTasks(size_t num_tasks,
                          const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  GAB_COUNT("pool.batches", 1);
  GAB_GAUGE_SET("pool.workers", num_threads());
  if (num_tasks == 1 || threads_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) {
      uint64_t task_start_ns = obs::Telemetry::Enabled()
                                   ? obs::SpanTracer::Global().NowNs()
                                   : 0;
      FaultPoint("pool.task");
      fn(i, 0);
      if (task_start_ns != 0) {
        GAB_HIST_US(
            "pool.task_us",
            (obs::SpanTracer::Global().NowNs() - task_start_ns) / 1e3);
      }
      GAB_COUNT("pool.tasks", 1);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->num_tasks = num_tasks;
  batch->fn = &fn;
  if (obs::Telemetry::Enabled()) {
    batch->publish_ns = obs::SpanTracer::Global().NowNs();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller participates as worker 0.
  WorkOn(*batch, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch->done_tasks.load(std::memory_order_acquire) ==
             batch->num_tasks;
    });
    if (current_ == batch) current_.reset();
  }
  // `fn` is only dereferenced by workers that claimed a task index below
  // num_tasks; once done_tasks == num_tasks no further claim can succeed,
  // so returning (and invalidating fn) here is safe even with stragglers.
  if (batch->faulted.load(std::memory_order_acquire)) {
    throw TransientFault{batch->fault_site, batch->fault_sequence};
  }
}

namespace {
// Active ScopedThreadPool override; read by DefaultPool() on every call.
// Only the main thread mutates it (enforced by ScopedThreadPool's contract).
ThreadPool* g_pool_override = nullptr;
}  // namespace

ThreadPool& DefaultPool() {
  if (g_pool_override != nullptr) return *g_pool_override;
  static ThreadPool& pool = [] {
    ThreadPool* p = new ThreadPool([] {
      if (const char* env = std::getenv("GAB_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<size_t>(v);
      }
      return static_cast<size_t>(0);
    }());
    // Probe the host environment once the pool (and with it the process's
    // thread runtime) is fully up — see ProbedHardware() in the header.
    ProbedHardware();
    return std::ref(*p);
  }();
  return pool;
}

const HardwareInfo& ProbedHardware() {
  static const HardwareInfo info = [] {
    HardwareInfo h;
    h.hardware_concurrency = std::thread::hardware_concurrency();
    if (h.hardware_concurrency == 0) h.hardware_concurrency = 1;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      h.cpu_affinity = static_cast<unsigned>(CPU_COUNT(&set));
    }
#endif
    // An affinity mask narrower than the advertised core count is the
    // truth (taskset/cgroup pinning); one wider means the early
    // hardware_concurrency probe lied — trust the kernel either way.
    if (h.cpu_affinity > 0) {
      h.hardware_concurrency = h.cpu_affinity;
    }
    return h;
  }();
  return info;
}

ScopedThreadPool::ScopedThreadPool(size_t num_threads)
    : pool_(num_threads), saved_(g_pool_override) {
  g_pool_override = &pool_;
}

ScopedThreadPool::~ScopedThreadPool() { g_pool_override = saved_; }

size_t SerialCutoff() {
  static const size_t cutoff = [] {
    if (const char* env = std::getenv("GAB_SERIAL_CUTOFF")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 0) return static_cast<size_t>(v);
    }
    return size_t{1} << 13;
  }();
  return cutoff;
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  GAB_CHECK(grain > 0);
  size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    body(0, n);
    return;
  }
  if (n <= SerialCutoff()) {
    // Inline chunk loop: identical boundaries and per-chunk fault points,
    // no batch publication. Injected faults propagate immediately, matching
    // the single-threaded RunTasks path.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      size_t begin = chunk * grain;
      size_t end = begin + grain < n ? begin + grain : n;
      FaultPoint("pool.task");
      body(begin, end);
    }
    return;
  }
  DefaultPool().RunTasks(num_chunks, [&](size_t chunk, size_t) {
    size_t begin = chunk * grain;
    size_t end = begin + grain < n ? begin + grain : n;
    body(begin, end);
  });
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  size_t workers = DefaultPool().num_threads();
  // 4 chunks per worker gives reasonable load balance without contention.
  size_t grain = n / (workers * 4) + 1;
  ParallelFor(n, grain, body);
}

double ParallelReduceSum(size_t n,
                         const std::function<double(size_t, size_t)>& body) {
  size_t workers = DefaultPool().num_threads();
  return ParallelReduceSum(n, n / (workers * 4) + 1, body);
}

double ParallelReduceSum(size_t n, size_t grain,
                         const std::function<double(size_t, size_t)>& body) {
  if (n == 0) return 0.0;
  GAB_CHECK(grain > 0);
  size_t num_chunks = (n + grain - 1) / grain;
  if (n <= SerialCutoff()) {
    // Same per-chunk partials combined in the same ascending order, so the
    // float result matches the pool path bit-for-bit.
    double total = 0.0;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      size_t begin = chunk * grain;
      size_t end = begin + grain < n ? begin + grain : n;
      FaultPoint("pool.task");
      total += body(begin, end);
    }
    return total;
  }
  std::vector<double> partial(num_chunks, 0.0);
  DefaultPool().RunTasks(num_chunks, [&](size_t chunk, size_t) {
    size_t begin = chunk * grain;
    size_t end = begin + grain < n ? begin + grain : n;
    partial[chunk] = body(begin, end);
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace gab
