#include "util/table.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace gab {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  GAB_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string& out, const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      out += "| ";
      out += r[c];
      out.append(widths[c] - r[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  append_row(out, header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string Table::FmtCount(uint64_t v) {
  // Groups digits with commas: 12345678 -> "12,345,678".
  char digits[32];
  int n = std::snprintf(digits, sizeof(digits), "%llu",
                        static_cast<unsigned long long>(v));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return fallback;
  return static_cast<uint64_t>(v);
}

}  // namespace gab
