#ifndef GAB_UTIL_TIMER_H_
#define GAB_UTIL_TIMER_H_

#include <chrono>

namespace gab {

/// Monotonic wall-clock stopwatch used for all reported timings.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gab

#endif  // GAB_UTIL_TIMER_H_
