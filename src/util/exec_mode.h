#ifndef GAB_UTIL_EXEC_MODE_H_
#define GAB_UTIL_EXEC_MODE_H_

namespace gab {

/// Execution modes trading determinism guarantees for raw speed
/// (DESIGN.md §10).
///
///  - kStrict (default): every parallel stage produces bit-identical
///    results, frontier orderings, and traces for every GAB_THREADS — the
///    repository-wide determinism contract the parallel-determinism tests
///    pin down.
///  - kRelaxed: engines may drop ordered frontier merging and other
///    scheduling-independence work. Algorithm *outputs* must still reach
///    the same fixed point (BFS levels, WCC labels, SSSP distances) or
///    stay within a bounded float divergence (PR), which the equivalence
///    verifier in algos/verify.h checks; internal orderings (the order of
///    a VertexSubset's sparse list, trace merge interleavings) become
///    scheduling-dependent.
///
/// The mode is process-wide, selected once from GAB_EXEC_MODE
/// ("strict" / "relaxed", default strict) and overridable in-process via
/// SetExecMode or the RAII ScopedExecMode (tests compare both modes in one
/// binary). Engines sample the mode per operation, so an override applies
/// to everything started after it.
enum class ExecMode {
  kStrict = 0,
  kRelaxed,
};

/// Current process-wide mode: the active override if any, else the cached
/// GAB_EXEC_MODE parse. Only read from the main thread (engine entry
/// points), matching ScopedThreadPool's threading contract.
ExecMode CurrentExecMode();

/// Overrides the mode for everything started after the call.
void SetExecMode(ExecMode mode);

/// "strict" / "relaxed".
const char* ExecModeName(ExecMode mode);

/// RAII mode override, restoring the previous mode on destruction. Nests.
class ScopedExecMode {
 public:
  explicit ScopedExecMode(ExecMode mode);
  ~ScopedExecMode();

  ScopedExecMode(const ScopedExecMode&) = delete;
  ScopedExecMode& operator=(const ScopedExecMode&) = delete;

 private:
  ExecMode saved_;
};

}  // namespace gab

#endif  // GAB_UTIL_EXEC_MODE_H_
