#include "usability/framework.h"

#include "stats/correlation.h"
#include "usability/api_spec.h"
#include "usability/codegen_sim.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gab {

const PlatformLevelScore& UsabilityReport::Cell(const std::string& abbrev,
                                                PromptLevel level) const {
  for (const PlatformLevelScore& cell : cells) {
    if (cell.platform_abbrev == abbrev && cell.level == level) return cell;
  }
  GAB_CHECK(false);
  return cells.front();
}

std::vector<double> UsabilityReport::WeightedRow(PromptLevel level) const {
  std::vector<double> row;
  for (const ApiSpec& spec : AllApiSpecs()) {
    row.push_back(Cell(spec.abbrev, level).scores.Weighted());
  }
  return row;
}

UsabilityReport RunUsabilityEvaluation(uint32_t trials, uint64_t seed) {
  GAB_CHECK(trials > 0);
  UsabilityReport report;
  report.trials = trials;
  SplitMix64 seeder(seed);
  for (const ApiSpec& spec : AllApiSpecs()) {
    for (PromptLevel level : AllPromptLevels()) {
      PromptSpec prompt = SpecForLevel(level);
      UsabilityScores sum;
      for (uint32_t t = 0; t < trials; ++t) {
        GeneratedCode code =
            SimulateCodeGeneration(spec, prompt, seeder.Next());
        UsabilityScores s = EvaluateCode(code, spec);
        sum.compliance += s.compliance;
        sum.correctness += s.correctness;
        sum.readability += s.readability;
      }
      PlatformLevelScore cell;
      cell.platform_abbrev = spec.abbrev;
      cell.level = level;
      cell.scores.compliance = sum.compliance / trials;
      cell.scores.correctness = sum.correctness / trials;
      cell.scores.readability = sum.readability / trials;
      report.cells.push_back(cell);
    }
  }
  return report;
}

std::vector<double> HumanBaselineScores(PromptLevel level) {
  // Paper Table 12, human rows, in AllApiSpecs (paper) platform order:
  // GX, PG, FL, GR, PP, LI, GT.
  switch (level) {
    case PromptLevel::kIntermediate:
      return {77.4, 62.8, 68.8, 57.2, 70.3, 67.6, 61.7};
    case PromptLevel::kSenior:
      return {78.2, 61.6, 74.6, 56.8, 72.0, 72.0, 65.7};
    default:
      // The paper's human study only covered these two levels.
      return {};
  }
}

double RankAgreementWithHumans(const UsabilityReport& report,
                               PromptLevel level) {
  std::vector<double> humans = HumanBaselineScores(level);
  GAB_CHECK(!humans.empty());
  return SpearmanRho(report.WeightedRow(level), humans);
}

}  // namespace gab
