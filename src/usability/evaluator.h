#ifndef GAB_USABILITY_EVALUATOR_H_
#define GAB_USABILITY_EVALUATOR_H_

#include "usability/api_spec.h"
#include "usability/codegen_sim.h"

namespace gab {

/// Per-metric scores on the paper's 0-100 scale.
struct UsabilityScores {
  double compliance = 0;   // weight 0.35 (paper §5.2, Step 3)
  double correctness = 0;  // weight 0.35
  double readability = 0;  // weight 0.30

  double Weighted() const {
    return 0.35 * compliance + 0.35 * correctness + 0.30 * readability;
  }
};

/// Default metric weights (customizable per the paper).
struct MetricWeights {
  double compliance = 0.35;
  double correctness = 0.35;
  double readability = 0.30;
};

/// The Code Evaluator: scores a generated artifact against the platform's
/// reference code. Compliance measures adherence to the platform's API
/// idiom, correctness the algorithmic logic, readability the structure —
/// mirroring the paper's three metrics and weighting.
UsabilityScores EvaluateCode(const GeneratedCode& code, const ApiSpec& api);

}  // namespace gab

#endif  // GAB_USABILITY_EVALUATOR_H_
