#ifndef GAB_USABILITY_CODEGEN_SIM_H_
#define GAB_USABILITY_CODEGEN_SIM_H_

#include <cstdint>
#include <vector>

#include "usability/api_spec.h"
#include "usability/prompt.h"

namespace gab {

/// Outcome of emitting one API call in the generated program.
enum class TokenOutcome {
  kCorrect = 0,     // right primitive, right usage
  kMisused,         // right primitive, wrong parameters/ordering
  kHallucinated,    // invented a nonexistent API (paper §5.2 Step 3)
  kGenericFallback, // fell back to plain C++ instead of the platform API
};

/// A simulated generation artifact: the per-required-call outcomes plus
/// structural properties the evaluator scores.
struct GeneratedCode {
  std::vector<TokenOutcome> tokens;  // one per required API call
  /// 0..1 structural quality (decomposition, naming discipline).
  double structure_quality = 0;
  /// Effective knowledge the generator operated with (diagnostic).
  double knowledge = 0;
};

/// The simulated code generator replacing the paper's instruction-tuned
/// GPT-4o (DESIGN.md Section 2). Per required API call, the probability of
/// a correct emission follows a documented function of the programmer's
/// knowledge — which combines the prompt level with the platform's
/// documentation, examples, and abstraction level — and the call's
/// complexity (parameters, concepts). Hallucinations become more likely
/// exactly when knowledge is low and the API surface is large, mirroring
/// the LLM behavior the paper reports.
GeneratedCode SimulateCodeGeneration(const ApiSpec& api,
                                     const PromptSpec& prompt, uint64_t seed);

/// The knowledge value the model assigns (exposed for tests/ablation).
double EffectiveKnowledge(const ApiSpec& api, const PromptSpec& prompt);

}  // namespace gab

#endif  // GAB_USABILITY_CODEGEN_SIM_H_
