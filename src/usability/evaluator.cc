#include "usability/evaluator.h"

#include <algorithm>
#include <cmath>

namespace gab {

namespace {

double Clamp100(double x) { return std::max(0.0, std::min(100.0, x)); }

}  // namespace

UsabilityScores EvaluateCode(const GeneratedCode& code, const ApiSpec& api) {
  double n = static_cast<double>(code.tokens.size());
  double correct = 0;
  double misused = 0;
  double hallucinated = 0;
  double generic = 0;
  for (TokenOutcome outcome : code.tokens) {
    switch (outcome) {
      case TokenOutcome::kCorrect:
        ++correct;
        break;
      case TokenOutcome::kMisused:
        ++misused;
        break;
      case TokenOutcome::kHallucinated:
        ++hallucinated;
        break;
      case TokenOutcome::kGenericFallback:
        ++generic;
        break;
    }
  }
  if (n == 0) return {};
  correct /= n;
  misused /= n;
  hallucinated /= n;
  generic /= n;

  UsabilityScores scores;
  // Compliance: adherence to the platform idiom versus the reference code.
  // Misused primitives are half credit (right idiom, wrong invocation);
  // generic fallbacks barely comply; hallucinations are penalized beyond
  // their share because they break the build.
  scores.compliance = Clamp100(
      100.0 * (0.30 + 0.70 * (correct + 0.55 * misused + 0.15 * generic)) -
      33.0 * hallucinated);

  // Correctness: does the program compute the right thing. A concave map of
  // the correct-call fraction (one wrong call usually breaks one stage, not
  // everything), with hallucinations again weighted heavily.
  scores.correctness = Clamp100(
      100.0 * (0.30 + 0.70 * std::pow(correct + 0.35 * misused, 1.15)) -
      25.0 * hallucinated);

  // Readability: naming discipline, boilerplate burden, structure.
  scores.readability = Clamp100(
      100.0 * (0.40 * api.naming_consistency +
               0.28 * (1.0 - api.boilerplate_ratio) +
               0.32 * code.structure_quality));
  return scores;
}

}  // namespace gab
