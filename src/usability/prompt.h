#ifndef GAB_USABILITY_PROMPT_H_
#define GAB_USABILITY_PROMPT_H_

#include <string>
#include <vector>

namespace gab {

/// The four prompt levels simulating programmer expertise (paper §5.2,
/// Step 2).
enum class PromptLevel {
  kJunior = 0,        // task description only
  kIntermediate = 1,  // + core API names and parameters
  kSenior = 2,        // + detailed API docs and example code
  kExpert = 3,        // + algorithm pseudo-code
};
inline constexpr int kNumPromptLevels = 4;
const char* PromptLevelName(PromptLevel level);
std::vector<PromptLevel> AllPromptLevels();

/// What a prompt level supplies to the code generator.
struct PromptSpec {
  PromptLevel level;
  bool gives_api_names = false;
  bool gives_api_docs = false;
  bool gives_examples = false;
  bool gives_pseudocode = false;
  /// Baseline familiarity the simulated programmer brings (grows with
  /// seniority independent of the platform).
  double base_knowledge = 0.0;
};

/// The canonical spec for each level.
PromptSpec SpecForLevel(PromptLevel level);

/// Renders the prompt text a real LLM would receive (platform identifiers
/// anonymized, paper §5.2); used by the docs/examples, exercised in tests.
std::string RenderPrompt(const PromptSpec& spec,
                         const std::string& task_description);

}  // namespace gab

#endif  // GAB_USABILITY_PROMPT_H_
