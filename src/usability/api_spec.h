#ifndef GAB_USABILITY_API_SPEC_H_
#define GAB_USABILITY_API_SPEC_H_

#include <string>
#include <vector>

namespace gab {

/// Descriptor of a platform's programming interface, authored from each
/// platform's public documentation and the paper's qualitative findings
/// (Section 8.4). These descriptors are the *data* the usability framework
/// evaluates; the generative model in codegen_sim.h consumes them the way
/// the paper's instruction-tuned LLM consumes platform documentation.
/// Platform identifiers are anonymized during evaluation (paper Section 5.2)
/// — the simulator never branches on the name, only on the metrics.
struct ApiSpec {
  std::string platform;  // display only; never used by the model
  std::string abbrev;

  /// Number of core API primitives a typical algorithm must compose
  /// (e.g. Ligra: edgeMap/vertexMap/vertexSubset/...; GraphX: pregel/
  /// aggregateMessages/...).
  uint32_t core_primitives = 6;
  /// Average parameters per primitive (arity complexity).
  double avg_params = 3.0;
  /// Distinct abstractions a newcomer must internalize (vertex programs,
  /// frontiers, blocks, message combiners, ...).
  uint32_t concept_count = 4;
  /// 0..1: how declarative/high-level the API is (1 = one-liner pipelines).
  double abstraction_level = 0.5;
  /// 0..1: documentation completeness and quality.
  double doc_quality = 0.5;
  /// 0..1: availability of worked examples / sample code.
  double example_richness = 0.5;
  /// Fraction of a typical program that is scaffolding (init, registration,
  /// partition plumbing) rather than algorithm logic.
  double boilerplate_ratio = 0.3;
  /// 0..1: consistency of naming conventions across the API surface.
  double naming_consistency = 0.7;
  /// 0..1: depth of control the API exposes to experienced users (drives
  /// the senior/expert score upside the paper observes for Grape).
  double expert_power = 0.5;
};

/// The seven evaluated platforms' descriptors, paper order.
const std::vector<ApiSpec>& AllApiSpecs();

/// Lookup by platform abbreviation; check-fails when unknown.
const ApiSpec& ApiSpecByAbbrev(const std::string& abbrev);

}  // namespace gab

#endif  // GAB_USABILITY_API_SPEC_H_
