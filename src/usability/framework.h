#ifndef GAB_USABILITY_FRAMEWORK_H_
#define GAB_USABILITY_FRAMEWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "usability/evaluator.h"
#include "usability/prompt.h"

namespace gab {

/// Averaged scores for one platform at one prompt level.
struct PlatformLevelScore {
  std::string platform_abbrev;
  PromptLevel level;
  UsabilityScores scores;  // trial averages
};

/// Full usability report (paper Figure 13 + Table 12).
struct UsabilityReport {
  std::vector<PlatformLevelScore> cells;  // platform-major, level-minor
  uint32_t trials = 0;

  const PlatformLevelScore& Cell(const std::string& abbrev,
                                 PromptLevel level) const;
  /// Weighted scores of every platform at a level, in AllApiSpecs order.
  std::vector<double> WeightedRow(PromptLevel level) const;
};

/// The multi-level LLM-based usability evaluation framework (paper §5.2):
/// for every platform and prompt level, run `trials` seeded generations
/// through the code generator and the code evaluator, averaging the three
/// metric scores. Deterministic for a fixed (trials, seed).
UsabilityReport RunUsabilityEvaluation(uint32_t trials, uint64_t seed);

/// The paper's human-study weighted scores (Table 12; 80+ reviewers) for
/// the Intermediate and Senior levels, in AllApiSpecs platform order:
/// the fixed baseline our framework's rankings are correlated against.
std::vector<double> HumanBaselineScores(PromptLevel level);

/// Spearman's rho between this report's ranking and the human baseline at
/// a level (paper reports 0.75 Intermediate / 0.714 Senior).
double RankAgreementWithHumans(const UsabilityReport& report,
                               PromptLevel level);

}  // namespace gab

#endif  // GAB_USABILITY_FRAMEWORK_H_
