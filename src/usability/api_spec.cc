#include "usability/api_spec.h"

#include "util/logging.h"

namespace gab {

const std::vector<ApiSpec>& AllApiSpecs() {
  // Field order: platform, abbrev, core_primitives, avg_params,
  // concept_count, abstraction_level, doc_quality, example_richness,
  // boilerplate_ratio, naming_consistency, expert_power.
  static const std::vector<ApiSpec>& specs = *new std::vector<ApiSpec>{
      // GraphX: tiny declarative surface (pregel/aggregateMessages over
      // RDDs), Spark-grade documentation — the paper's usability winner.
      {"GraphX", "GX", 5, 2.6, 3, 0.90, 0.90, 0.90, 0.15, 0.90, 0.60},
      // PowerGraph: gather/apply/scatter is small and well explained, but
      // the consistency models add concepts.
      {"PowerGraph", "PG", 6, 3.0, 5, 0.66, 0.55, 0.60, 0.38, 0.62, 0.55},
      // Flash: rich vertexSubset algebra (vertexMap/edgeMapDense/
      // edgeMapSparse/...), younger project with thinner docs.
      {"Flash", "FL", 8, 3.8, 6, 0.62, 0.50, 0.62, 0.22, 0.72, 0.97},
      // Grape: PIE model plus fragment/message-manager plumbing; steepest
      // learning curve, strongest expert control (paper Section 8.4).
      {"Grape", "GR", 9, 4.2, 8, 0.38, 0.50, 0.45, 0.45, 0.65, 0.90},
      // Pregel+: classic compute()/reducer() with combiners/aggregators;
      // mature docs, beginner friendly.
      {"Pregel+", "PP", 6, 2.8, 4, 0.62, 0.75, 0.70, 0.25, 0.80, 0.70},
      // Ligra: compact but subtle (direction optimization, atomic update
      // contracts), sparse academic docs.
      {"Ligra", "LI", 7, 3.2, 5, 0.55, 0.55, 0.60, 0.22, 0.75, 0.75},
      // G-thinker: task/spawn/pull mining abstractions; niche but focused.
      {"G-thinker", "GT", 7, 3.4, 6, 0.50, 0.60, 0.55, 0.30, 0.70, 0.78},
  };
  return specs;
}

const ApiSpec& ApiSpecByAbbrev(const std::string& abbrev) {
  for (const ApiSpec& spec : AllApiSpecs()) {
    if (spec.abbrev == abbrev) return spec;
  }
  GAB_CHECK(false);
  return AllApiSpecs().front();
}

}  // namespace gab
