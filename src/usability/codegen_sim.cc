#include "usability/codegen_sim.h"

#include <algorithm>

#include "util/rng.h"

namespace gab {

namespace {

double Clamp01(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

}  // namespace

double EffectiveKnowledge(const ApiSpec& api, const PromptSpec& prompt) {
  // Seniority-weighted familiarity model. Every term corresponds to a
  // factor the paper identifies: abstraction lowers the entry barrier,
  // documentation and examples are amplified when the prompt supplies them
  // (Senior/Expert levels), concept count raises the learning cost, and a
  // platform's expert_power is only unlocked by experienced programmers.
  double k = prompt.base_knowledge;
  k += 0.22 * api.abstraction_level;
  k += 0.18 * api.doc_quality * (prompt.gives_api_docs ? 1.5 : 1.0);
  k += 0.12 * api.example_richness * (prompt.gives_examples ? 1.6 : 1.0);
  if (prompt.gives_api_names) k += 0.05;
  if (prompt.gives_pseudocode) k += 0.06;
  k -= 0.03 * (static_cast<double>(api.concept_count) - 3.0);
  // Seniority unlock of expert-grade control (0 at Junior, full at Expert).
  double seniority = Clamp01((prompt.base_knowledge - 0.15) / 0.55, 0.0, 1.0);
  k += 0.25 * api.expert_power * seniority;
  return Clamp01(k, 0.05, 0.98);
}

GeneratedCode SimulateCodeGeneration(const ApiSpec& api,
                                     const PromptSpec& prompt,
                                     uint64_t seed) {
  Rng rng(seed);
  GeneratedCode code;
  code.knowledge = EffectiveKnowledge(api, prompt);

  // Per-call difficulty grows with arity and concept load.
  double difficulty = Clamp01(0.5 * api.avg_params / 6.0 +
                                  0.5 * api.concept_count / 10.0,
                              0.0, 1.0);
  double p_correct = Clamp01(code.knowledge * (1.0 - 0.35 * difficulty),
                             0.02, 0.99);
  // Hallucinations: invented APIs, likelier with poor docs and low
  // knowledge (the paper's observed LLM failure mode).
  double p_hallucinate =
      (1.0 - code.knowledge) * 0.35 * (1.0 - 0.5 * api.doc_quality);
  // Generic fallback: ignoring the platform API for plain C++ loops.
  double p_generic =
      (1.0 - code.knowledge) * 0.30 * (1.0 - 0.5 * api.abstraction_level);

  code.tokens.reserve(api.core_primitives);
  for (uint32_t i = 0; i < api.core_primitives; ++i) {
    double r = rng.NextUnit();
    if (r < p_correct) {
      code.tokens.push_back(TokenOutcome::kCorrect);
    } else if (r < p_correct + p_hallucinate) {
      code.tokens.push_back(TokenOutcome::kHallucinated);
    } else if (r < p_correct + p_hallucinate + p_generic) {
      code.tokens.push_back(TokenOutcome::kGenericFallback);
    } else {
      code.tokens.push_back(TokenOutcome::kMisused);
    }
  }
  // Structure discipline tracks knowledge with a platform-independent
  // floor plus mild noise (two generations are never identical).
  code.structure_quality = Clamp01(
      0.30 + 0.65 * code.knowledge + 0.05 * (rng.NextUnit() - 0.5), 0.0, 1.0);
  return code;
}

}  // namespace gab
