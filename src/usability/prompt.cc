#include "usability/prompt.h"

#include "util/logging.h"

namespace gab {

const char* PromptLevelName(PromptLevel level) {
  switch (level) {
    case PromptLevel::kJunior:
      return "Junior";
    case PromptLevel::kIntermediate:
      return "Intermediate";
    case PromptLevel::kSenior:
      return "Senior";
    case PromptLevel::kExpert:
      return "Expert";
  }
  return "?";
}

std::vector<PromptLevel> AllPromptLevels() {
  return {PromptLevel::kJunior, PromptLevel::kIntermediate,
          PromptLevel::kSenior, PromptLevel::kExpert};
}

PromptSpec SpecForLevel(PromptLevel level) {
  PromptSpec spec;
  spec.level = level;
  switch (level) {
    case PromptLevel::kJunior:
      spec.base_knowledge = 0.15;
      break;
    case PromptLevel::kIntermediate:
      spec.gives_api_names = true;
      spec.base_knowledge = 0.35;
      break;
    case PromptLevel::kSenior:
      spec.gives_api_names = true;
      spec.gives_api_docs = true;
      spec.gives_examples = true;
      spec.base_knowledge = 0.55;
      break;
    case PromptLevel::kExpert:
      spec.gives_api_names = true;
      spec.gives_api_docs = true;
      spec.gives_examples = true;
      spec.gives_pseudocode = true;
      spec.base_knowledge = 0.70;
      break;
  }
  return spec;
}

std::string RenderPrompt(const PromptSpec& spec,
                         const std::string& task_description) {
  std::string prompt =
      "You are an advanced code generation assistant. Your task is to "
      "generate efficient, well-structured C++ code for the anonymized "
      "graph platform described below.\n\n";
  prompt += "Task: " + task_description + "\n";
  if (spec.gives_api_names) {
    prompt += "Core APIs: <anonymized primitive names and parameters>\n";
  }
  if (spec.gives_api_docs) {
    prompt += "API documentation: <detailed usage instructions>\n";
  }
  if (spec.gives_examples) {
    prompt += "Example code: <sample program using the primitives>\n";
  }
  if (spec.gives_pseudocode) {
    prompt += "Algorithm pseudo-code: <step-by-step reference>\n";
  }
  prompt += "\nThe code should rely only on the platform's lowest-level "
            "APIs (no high-level wrappers).\n";
  return prompt;
}

}  // namespace gab
