#include "algos/wcc.h"

#include <atomic>
#include <memory>
#include <unordered_set>

#include "util/threading.h"

namespace gab {

namespace {

// Find with path halving over an atomic parent array. Parents only ever
// decrease (unions always link the larger root under the smaller), so the
// CAS either installs a closer-to-root shortcut or loses to one.
VertexId Find(std::atomic<VertexId>* parent, VertexId x) {
  while (true) {
    VertexId p = parent[x].load(std::memory_order_relaxed);
    if (p == x) return x;
    VertexId gp = parent[p].load(std::memory_order_relaxed);
    if (p != gp) {
      parent[x].compare_exchange_weak(p, gp, std::memory_order_relaxed);
    }
    x = p;
  }
}

// Lock-free union-by-min: links the larger root under the smaller via CAS,
// retrying from fresh roots on contention. Because the component's minimum
// vertex can never acquire a parent, the final roots — and therefore the
// labels — are the per-component minima regardless of scheduling.
void Unite(std::atomic<VertexId>* parent, VertexId u, VertexId v) {
  while (true) {
    VertexId ru = Find(parent, u);
    VertexId rv = Find(parent, v);
    if (ru == rv) return;
    if (ru > rv) std::swap(ru, rv);
    VertexId expected = rv;
    if (parent[rv].compare_exchange_strong(expected, ru,
                                           std::memory_order_relaxed)) {
      return;
    }
    u = ru;
    v = rv;
  }
}

}  // namespace

std::vector<VertexId> WccReference(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n);
  if (n == 0) return label;
  std::unique_ptr<std::atomic<VertexId>[]> parent(
      new std::atomic<VertexId>[n]);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      parent[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
    }
  });
  // Every edge appears in some vertex's out-adjacency (for undirected
  // graphs in both endpoints'), so uniting out-arcs alone connects the
  // weakly-connected components of directed graphs too.
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      for (VertexId v : g.OutNeighbors(u)) {
        // Undirected adjacency stores both directions; one suffices.
        if (g.is_undirected() && v < u) continue;
        Unite(parent.get(), static_cast<VertexId>(u), v);
      }
    }
  });
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      label[v] = Find(parent.get(), static_cast<VertexId>(v));
    }
  });
  return label;
}

size_t CountComponents(const std::vector<VertexId>& labels) {
  std::unordered_set<VertexId> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace gab
