#include "algos/wcc.h"

#include <unordered_set>

namespace gab {

std::vector<VertexId> WccReference(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      VertexId ru = find(u);
      VertexId rv = find(v);
      if (ru == rv) continue;
      // Union toward the smaller id so the final label is the component min.
      if (ru < rv) {
        parent[rv] = ru;
      } else {
        parent[ru] = rv;
      }
    }
  }
  // For directed graphs the in-edges must be unioned too ("weakly"
  // connected); for undirected graphs OutNeighbors already covers both.
  if (!g.is_undirected() && g.has_in_edges()) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.InNeighbors(u)) {
        VertexId ru = find(u);
        VertexId rv = find(v);
        if (ru == rv) continue;
        if (ru < rv) {
          parent[rv] = ru;
        } else {
          parent[ru] = rv;
        }
      }
    }
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

size_t CountComponents(const std::vector<VertexId>& labels) {
  std::unordered_set<VertexId> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace gab
