#include "algos/lcc.h"

#include "stats/graph_stats.h"

namespace gab {

std::vector<double> LccReference(const CsrGraph& g) {
  std::vector<uint64_t> triangles = TrianglesPerVertex(g);
  std::vector<double> lcc(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.OutDegree(v);
    if (d < 2) continue;
    lcc[v] = static_cast<double>(triangles[v]) /
             (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
  }
  return lcc;
}

}  // namespace gab
