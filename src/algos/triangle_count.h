#ifndef GAB_ALGOS_TRIANGLE_COUNT_H_
#define GAB_ALGOS_TRIANGLE_COUNT_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace gab {

/// Reference triangle count of an undirected graph. Forward algorithm:
/// each triangle {u < v < w} is found exactly once by intersecting the
/// higher-id adjacency suffixes of an edge's endpoints.
uint64_t TriangleCountReference(const CsrGraph& g);

}  // namespace gab

#endif  // GAB_ALGOS_TRIANGLE_COUNT_H_
