#include "algos/sssp.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "util/atomic_bitset.h"
#include "util/threading.h"

namespace gab {

std::vector<Dist> SsspReference(const CsrGraph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  if (n == 0) return dist;
  using Entry = std::pair<Dist, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  const bool weighted = g.has_weights();
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    auto nbrs = g.OutNeighbors(u);
    auto weights = weighted ? g.OutWeights(u) : std::span<const Weight>{};
    for (size_t i = 0; i < nbrs.size(); ++i) {
      Dist w = weighted ? weights[i] : 1;
      Dist nd = d + w;
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

namespace {

/// Lock-free min into *slot; true iff value lowered the stored distance.
bool AtomicMinDist(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (value < current) {
    if (slot->compare_exchange_weak(current, value,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

constexpr size_t kChunk = 1024;

/// One worker's relaxation state: open-ended bucket lists indexed by the
/// absolute bucket number (dist / delta), merged into the shared bins
/// after each phase barrier.
struct LocalBins {
  std::vector<std::vector<VertexId>> bins;
  std::vector<VertexId> settled;
  uint64_t relaxations = 0;

  void Insert(size_t bucket, VertexId v) {
    if (bucket >= bins.size()) bins.resize(bucket + 1);
    bins[bucket].push_back(v);
  }
};

}  // namespace

Dist AutoTuneDelta(const CsrGraph& g) {
  if (const char* env = std::getenv("GAB_SSSP_DELTA")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<Dist>(v);
  }
  if (!g.has_weights() || g.num_arcs() == 0) return 1;
  // Mean weight via fixed-grain chunk partials summed in chunk order:
  // the same value at every GAB_THREADS.
  const auto& weights = g.out_weights();
  uint64_t total = 0;
  const size_t grain = size_t{1} << 16;
  const size_t chunks = (weights.size() + grain - 1) / grain;
  std::vector<uint64_t> partial(chunks, 0);
  ParallelFor(weights.size(), grain, [&](size_t begin, size_t end) {
    uint64_t sum = 0;
    for (size_t i = begin; i < end; ++i) sum += weights[i];
    partial[begin / grain] = sum;
  });
  for (uint64_t p : partial) total += p;
  Dist mean = static_cast<Dist>(total / weights.size());
  return std::max<Dist>(1, mean);
}

std::vector<Dist> DeltaSteppingSssp(const CsrGraph& g, VertexId source,
                                    Dist delta, DeltaSsspStats* stats) {
  GAB_SPAN("algo.sssp.delta_stepping");
  const VertexId n = g.num_vertices();
  std::vector<Dist> result(n, kInfDist);
  if (n == 0) return result;
  if (delta == 0) delta = AutoTuneDelta(g);
  GAB_GAUGE_SET("algo.sssp.delta", delta);

  auto dist = std::make_unique<std::atomic<uint64_t>[]>(n);
  ParallelFor(n, size_t{1} << 14, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      dist[v].store(kInfDist, std::memory_order_relaxed);
    }
  });
  dist[source].store(0, std::memory_order_relaxed);

  const bool weighted = g.has_weights();
  const size_t workers = DefaultPool().num_threads();
  std::vector<LocalBins> local(workers);
  // Shared bucket lists, indexed by absolute bucket number. Entries may be
  // stale (the vertex was since pulled into an earlier bucket); the pop
  // check discards them.
  std::vector<std::vector<VertexId>> bins(1);
  bins[0].push_back(source);
  // Deduplicates the settled set of the current bucket (a vertex re-popped
  // by a later light phase relaxes again but is recorded once).
  AtomicBitset in_settled(n);

  DeltaSsspStats local_stats;
  local_stats.delta = delta;

  // Relaxes u's edges in [w_lo, w_hi]; every improved neighbor lands in
  // its target bucket of the worker-local bins.
  auto relax = [&](VertexId u, Dist du, Weight w_lo, Weight w_hi,
                   LocalBins& bin) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = weighted ? g.OutWeights(u) : std::span<const Weight>{};
    for (size_t i = 0; i < nbrs.size(); ++i) {
      Weight w = weighted ? ws[i] : Weight{1};
      if (w < w_lo || w > w_hi) continue;
      Dist nd = du + w;
      if (AtomicMinDist(&dist[nbrs[i]], nd)) {
        ++bin.relaxations;
        bin.Insert(static_cast<size_t>(nd / delta), nbrs[i]);
      }
    }
  };

  // Runs `body(chunk, worker)` over `items` frontier entries: inline when
  // small (same chunk boundaries), pooled otherwise.
  auto run_chunks = [&](size_t items, size_t chunks,
                        const std::function<void(size_t, size_t)>& body) {
    if (items <= SerialCutoff()) {
      for (size_t c = 0; c < chunks; ++c) body(c, 0);
      return;
    }
    DefaultPool().RunTasks(chunks, body);
  };

  auto merge_local_bins = [&]() {
    for (LocalBins& lb : local) {
      local_stats.relaxations += lb.relaxations;
      lb.relaxations = 0;
      for (size_t b = 0; b < lb.bins.size(); ++b) {
        if (lb.bins[b].empty()) continue;
        if (b >= bins.size()) bins.resize(b + 1);
        bins[b].insert(bins[b].end(), lb.bins[b].begin(), lb.bins[b].end());
        lb.bins[b].clear();
      }
    }
  };

  const Weight light_max = static_cast<Weight>(
      std::min<Dist>(delta, std::numeric_limits<Weight>::max()));
  std::vector<VertexId> settled;
  std::vector<VertexId> frontier;

  for (size_t curr = 0; curr < bins.size(); ++curr) {
    if (bins[curr].empty()) continue;
    GAB_SPAN_VALUE("algo.sssp.bucket", curr);
    ++local_stats.buckets_processed;
    settled.clear();
    const Dist lo = static_cast<Dist>(curr) * delta;
    const Dist hi = lo + delta;

    // Light phases: drain the bucket, re-running vertices whose distance
    // improved within the bucket, until no light relaxation refills it.
    while (curr < bins.size() && !bins[curr].empty()) {
      ++local_stats.phases;
      frontier = std::move(bins[curr]);
      bins[curr].clear();
      const size_t chunks = (frontier.size() + kChunk - 1) / kChunk;
      run_chunks(frontier.size(), chunks, [&](size_t c, size_t worker) {
        LocalBins& lb = local[worker];
        const size_t b = c * kChunk;
        const size_t e = std::min(b + kChunk, frontier.size());
        for (size_t i = b; i < e; ++i) {
          VertexId u = frontier[i];
          Dist du = dist[u].load(std::memory_order_relaxed);
          if (du < lo || du >= hi) continue;  // settled earlier or stale
          if (in_settled.TestAndSet(u)) lb.settled.push_back(u);
          relax(u, du, 1, light_max, lb);
        }
      });
      merge_local_bins();
    }

    // Collect the settled set (worker-local lists, deduped by the bitmap)
    // and restore the bitmap's all-zero invariant.
    for (LocalBins& lb : local) {
      settled.insert(settled.end(), lb.settled.begin(), lb.settled.end());
      lb.settled.clear();
    }
    for (VertexId v : settled) in_settled.ClearBit(v);

    // Heavy phase: every settled vertex's distance is final, so heavy
    // edges (w > delta) relax exactly once per vertex.
    if (light_max < std::numeric_limits<Weight>::max()) {
      const size_t chunks = (settled.size() + kChunk - 1) / kChunk;
      run_chunks(settled.size(), chunks, [&](size_t c, size_t worker) {
        LocalBins& lb = local[worker];
        const size_t b = c * kChunk;
        const size_t e = std::min(b + kChunk, settled.size());
        for (size_t i = b; i < e; ++i) {
          VertexId u = settled[i];
          relax(u, dist[u].load(std::memory_order_relaxed),
                light_max + 1, std::numeric_limits<Weight>::max(), lb);
        }
      });
      merge_local_bins();
    }
  }

  ParallelFor(n, size_t{1} << 14, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      result[v] = dist[v].load(std::memory_order_relaxed);
    }
  });
  GAB_GAUGE_SET("algo.sssp.buckets", local_stats.buckets_processed);
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace gab
