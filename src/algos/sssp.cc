#include "algos/sssp.h"

#include <queue>
#include <utility>

namespace gab {

std::vector<Dist> SsspReference(const CsrGraph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  if (n == 0) return dist;
  using Entry = std::pair<Dist, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  const bool weighted = g.has_weights();
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    auto nbrs = g.OutNeighbors(u);
    auto weights = weighted ? g.OutWeights(u) : std::span<const Weight>{};
    for (size_t i = 0; i < nbrs.size(); ++i) {
      Dist w = weighted ? weights[i] : 1;
      Dist nd = d + w;
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

}  // namespace gab
