#ifndef GAB_ALGOS_PAGERANK_H_
#define GAB_ALGOS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Canonical PageRank parameters used throughout the benchmark (paper
/// Section 7.2 fixes the iteration count at 10).
struct PageRankParams {
  double damping = 0.85;
  uint32_t iterations = 10;
};

/// Reference sequential PageRank. Synchronous power iteration:
///   pr'(v) = (1-d)/n + d * (sum_{u->v} pr(u)/outdeg(u) + dangling/n)
/// Dangling mass is redistributed uniformly. Every platform implementation
/// must match this within floating-point tolerance.
std::vector<double> PageRankReference(const CsrGraph& g,
                                      const PageRankParams& params = {});

}  // namespace gab

#endif  // GAB_ALGOS_PAGERANK_H_
