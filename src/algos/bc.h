#ifndef GAB_ALGOS_BC_H_
#define GAB_ALGOS_BC_H_

#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference single-source betweenness centrality (Brandes' algorithm with
/// unweighted BFS): the dependency score delta(v) of every vertex with
/// respect to shortest paths from `source`. The benchmark fixes source = 0
/// (paper §7.2), making BC a sequential-class algorithm comparable across
/// platforms: one forward BFS phase plus one backward accumulation phase.
std::vector<double> BcReference(const CsrGraph& g, VertexId source);

}  // namespace gab

#endif  // GAB_ALGOS_BC_H_
