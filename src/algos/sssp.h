#ifndef GAB_ALGOS_SSSP_H_
#define GAB_ALGOS_SSSP_H_

#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference single-source shortest paths: Dijkstra with a binary heap.
/// Unweighted graphs are treated as weight-1 per edge. Unreachable vertices
/// get kInfDist. The benchmark fixes the source at vertex 0 (paper §7.2).
std::vector<Dist> SsspReference(const CsrGraph& g, VertexId source);

}  // namespace gab

#endif  // GAB_ALGOS_SSSP_H_
