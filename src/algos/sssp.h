#ifndef GAB_ALGOS_SSSP_H_
#define GAB_ALGOS_SSSP_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference single-source shortest paths: Dijkstra with a binary heap.
/// Unweighted graphs are treated as weight-1 per edge. Unreachable vertices
/// get kInfDist. The benchmark fixes the source at vertex 0 (paper §7.2).
std::vector<Dist> SsspReference(const CsrGraph& g, VertexId source);

/// Per-run delta-stepping telemetry.
struct DeltaSsspStats {
  /// Bucket width actually used (after auto-tuning / env override).
  Dist delta = 0;
  uint64_t buckets_processed = 0;
  /// Light-edge phases across all buckets (>= buckets_processed).
  uint64_t phases = 0;
  /// Successful distance improvements (AtomicMin wins).
  uint64_t relaxations = 0;
};

/// Picks the bucket width for `g`: GAB_SSSP_DELTA when set (>0), else the
/// mean edge weight measured with a fixed-grain deterministic reduction —
/// roughly half the arcs become light, balancing phase count against
/// re-relaxation. Unweighted graphs get delta = 1 (exact BFS-like rounds).
Dist AutoTuneDelta(const CsrGraph& g);

/// Delta-stepping SSSP (Meyer–Sanders, GAP-style): vertices are bucketed
/// by dist/delta; each bucket is drained with repeated light-edge
/// (w <= delta) phases, then the settled set relaxes its heavy edges once.
/// Distances converge to the same fixed point as Dijkstra regardless of
/// schedule (AtomicMin is commutative), so the output is bit-identical at
/// every GAB_THREADS in both exec modes. delta = 0 means auto-tune.
std::vector<Dist> DeltaSteppingSssp(const CsrGraph& g, VertexId source,
                                    Dist delta = 0,
                                    DeltaSsspStats* stats = nullptr);

}  // namespace gab

#endif  // GAB_ALGOS_SSSP_H_
