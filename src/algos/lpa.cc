#include "algos/lpa.h"

#include <unordered_map>

namespace gab {

std::vector<uint32_t> LpaReference(const CsrGraph& g, uint32_t iterations) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<uint32_t> next(n);
  std::unordered_map<uint32_t, uint32_t> freq;
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      auto nbrs = g.OutNeighbors(v);
      if (nbrs.empty()) {
        next[v] = label[v];
        continue;
      }
      freq.clear();
      uint32_t best_label = 0;
      uint32_t best_count = 0;
      for (VertexId u : nbrs) {
        uint32_t c = ++freq[label[u]];
        if (c > best_count || (c == best_count && label[u] < best_label)) {
          best_count = c;
          best_label = label[u];
        }
      }
      next[v] = best_label;
    }
    label.swap(next);
  }
  return label;
}

}  // namespace gab
