#ifndef GAB_ALGOS_LPA_H_
#define GAB_ALGOS_LPA_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Canonical label-propagation specification shared by the reference and
/// every platform implementation so outputs are bit-identical:
///  - labels start as vertex ids;
///  - updates are synchronous (all vertices read the previous round);
///  - each vertex adopts its neighbors' most frequent label, breaking ties
///    toward the smallest label; isolated vertices keep their label;
///  - exactly `iterations` rounds are run (paper §7.2 fixes 10).
std::vector<uint32_t> LpaReference(const CsrGraph& g, uint32_t iterations = 10);

}  // namespace gab

#endif  // GAB_ALGOS_LPA_H_
