#include "algos/core_decomposition.h"

#include <algorithm>

#include "util/logging.h"

namespace gab {

namespace {

// Bucket peeling; fills coreness and, optionally, the removal order.
void Peel(const CsrGraph& g, std::vector<uint32_t>* coreness,
          std::vector<VertexId>* order) {
  const VertexId n = g.num_vertices();
  coreness->assign(n, 0);
  if (order != nullptr) {
    order->clear();
    order->reserve(n);
  }
  if (n == 0) return;

  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(g.OutDegree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // bucket sort vertices by degree: bin[d] = start offset of degree-d run.
  std::vector<VertexId> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (uint32_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> vert(n);   // vertices sorted by current degree
  std::vector<VertexId> pos(n);    // position of vertex in `vert`
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      vert[pos[v]] = v;
    }
  }
  for (VertexId i = 0; i < n; ++i) {
    VertexId v = vert[i];
    (*coreness)[v] = degree[v];
    if (order != nullptr) order->push_back(v);
    for (VertexId u : g.OutNeighbors(v)) {
      if (degree[u] <= degree[v]) continue;
      // Move u into the next-lower bucket: swap with the first vertex of
      // its current degree run, then shrink the run.
      uint32_t du = degree[u];
      VertexId pu = pos[u];
      VertexId pw = bin[du];
      VertexId w = vert[pw];
      if (u != w) {
        pos[u] = pw;
        pos[w] = pu;
        vert[pu] = w;
        vert[pw] = u;
      }
      ++bin[du];
      --degree[u];
    }
  }
}

}  // namespace

std::vector<uint32_t> CoreDecompositionReference(const CsrGraph& g) {
  std::vector<uint32_t> coreness;
  Peel(g, &coreness, nullptr);
  return coreness;
}

uint32_t Degeneracy(const CsrGraph& g) {
  std::vector<uint32_t> coreness = CoreDecompositionReference(g);
  uint32_t best = 0;
  for (uint32_t c : coreness) best = std::max(best, c);
  return best;
}

std::vector<VertexId> DegeneracyOrder(const CsrGraph& g) {
  std::vector<uint32_t> coreness;
  std::vector<VertexId> order;
  Peel(g, &coreness, &order);
  return order;
}

}  // namespace gab
