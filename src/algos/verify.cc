#include "algos/verify.h"

#include <cmath>
#include <unordered_map>

namespace gab {

VerifyResult CompareDoubles(const std::vector<double>& actual,
                            const std::vector<double>& expected,
                            double rel_tol, double abs_tol) {
  if (actual.size() != expected.size()) {
    return VerifyResult::Fail("size mismatch: " +
                              std::to_string(actual.size()) + " vs " +
                              std::to_string(expected.size()));
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    double diff = std::abs(actual[i] - expected[i]);
    double bound = abs_tol + rel_tol * std::abs(expected[i]);
    if (diff > bound) {
      return VerifyResult::Fail(
          "index " + std::to_string(i) + ": " + std::to_string(actual[i]) +
          " vs expected " + std::to_string(expected[i]));
    }
  }
  return VerifyResult::Ok();
}

VerifyResult CompareExact(const std::vector<uint64_t>& actual,
                          const std::vector<uint64_t>& expected) {
  if (actual.size() != expected.size()) {
    return VerifyResult::Fail("size mismatch: " +
                              std::to_string(actual.size()) + " vs " +
                              std::to_string(expected.size()));
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != expected[i]) {
      return VerifyResult::Fail(
          "index " + std::to_string(i) + ": " + std::to_string(actual[i]) +
          " vs expected " + std::to_string(expected[i]));
    }
  }
  return VerifyResult::Ok();
}

VerifyResult ComparePartitions(const std::vector<uint64_t>& actual,
                               const std::vector<uint64_t>& expected) {
  if (actual.size() != expected.size()) {
    return VerifyResult::Fail("size mismatch");
  }
  // A bijection between label spaces must exist in both directions.
  std::unordered_map<uint64_t, uint64_t> fwd;
  std::unordered_map<uint64_t, uint64_t> bwd;
  for (size_t i = 0; i < actual.size(); ++i) {
    auto [fit, finserted] = fwd.try_emplace(actual[i], expected[i]);
    if (!finserted && fit->second != expected[i]) {
      return VerifyResult::Fail("partition mismatch at index " +
                                std::to_string(i));
    }
    auto [bit, binserted] = bwd.try_emplace(expected[i], actual[i]);
    if (!binserted && bit->second != actual[i]) {
      return VerifyResult::Fail("partition mismatch at index " +
                                std::to_string(i));
    }
  }
  return VerifyResult::Ok();
}

VerifyResult VerifyFixedPoint(const std::vector<uint64_t>& strict_out,
                              const std::vector<uint64_t>& relaxed_out,
                              const std::string& label) {
  VerifyResult r = CompareExact(relaxed_out, strict_out);
  if (!r.ok) {
    r.detail = label + ": relaxed diverged from strict fixed point (" +
               r.detail + ")";
  }
  return r;
}

VerifyResult VerifyBoundedDivergence(const std::vector<double>& strict_out,
                                     const std::vector<double>& relaxed_out,
                                     double max_abs,
                                     const std::string& label) {
  VerifyResult r =
      CompareDoubles(relaxed_out, strict_out, /*rel_tol=*/1e-7, max_abs);
  if (!r.ok) {
    r.detail = label + ": relaxed exceeded divergence bound (" + r.detail +
               ")";
  }
  return r;
}

}  // namespace gab
