#include "algos/pagerank.h"

namespace gab {

std::vector<double> PageRankReference(const CsrGraph& g,
                                      const PageRankParams& params) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);

  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (g.OutDegree(v) == 0) dangling += rank[v];
    }
    std::fill(next.begin(), next.end(),
              (1.0 - params.damping) * inv_n +
                  params.damping * dangling * inv_n);
    for (VertexId u = 0; u < n; ++u) {
      size_t deg = g.OutDegree(u);
      if (deg == 0) continue;
      double share = params.damping * rank[u] / static_cast<double>(deg);
      for (VertexId v : g.OutNeighbors(u)) next[v] += share;
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace gab
