#include "algos/pagerank.h"

#include <algorithm>

#include "util/threading.h"

namespace gab {

namespace {

// Fixed chunk size for the per-iteration parallel loops. Keeping the grain
// independent of the worker count pins the dangling-mass partial-sum
// boundaries, so the floating-point output is bit-identical for every
// GAB_THREADS value.
constexpr size_t kPageRankGrain = 4096;

}  // namespace

std::vector<double> PageRankReference(const CsrGraph& g,
                                      const PageRankParams& params) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);
  // Pull-based update: each vertex sums its in-neighbors' shares, so rows
  // parallelize without atomics and each row's summation order (ascending
  // source id) matches the sequential push schedule exactly. Directed
  // graphs built without in-edges fall back to sequential push.
  const bool pull = g.has_in_edges();

  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    double dangling =
        ParallelReduceSum(n, kPageRankGrain, [&](size_t begin, size_t end) {
          double sum = 0.0;
          for (size_t v = begin; v < end; ++v) {
            if (g.OutDegree(v) == 0) sum += rank[v];
          }
          return sum;
        });
    const double base =
        (1.0 - params.damping) * inv_n + params.damping * dangling * inv_n;
    if (pull) {
      ParallelFor(n, kPageRankGrain, [&](size_t begin, size_t end) {
        for (size_t v = begin; v < end; ++v) {
          double acc = base;
          for (VertexId u : g.InNeighbors(v)) {
            acc += params.damping * rank[u] /
                   static_cast<double>(g.OutDegree(u));
          }
          next[v] = acc;
        }
      });
    } else {
      std::fill(next.begin(), next.end(), base);
      for (VertexId u = 0; u < n; ++u) {
        size_t deg = g.OutDegree(u);
        if (deg == 0) continue;
        double share = params.damping * rank[u] / static_cast<double>(deg);
        for (VertexId v : g.OutNeighbors(u)) next[v] += share;
      }
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace gab
