#ifndef GAB_ALGOS_LCC_H_
#define GAB_ALGOS_LCC_H_

#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference local clustering coefficient per vertex:
/// triangles(v) / (deg(v) * (deg(v)-1) / 2), 0 for degree < 2.
/// LCC is one of LDBC Graphalytics' six core algorithms; this benchmark
/// replaces it with TC/KC (paper Section 3) but implements it for the
/// LDBC-compatibility comparison in bench_ablation_diversity.
std::vector<double> LccReference(const CsrGraph& g);

}  // namespace gab

#endif  // GAB_ALGOS_LCC_H_
