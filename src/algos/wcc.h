#ifndef GAB_ALGOS_WCC_H_
#define GAB_ALGOS_WCC_H_

#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference weakly-connected components via union-find. The returned label
/// of every vertex is the minimum vertex id of its component, which is also
/// the fixpoint of min-label propagation — so platform outputs compare
/// directly. Edge direction is ignored (paper §7.2 runs WCC undirected).
std::vector<VertexId> WccReference(const CsrGraph& g);

/// Number of distinct components in a label assignment.
size_t CountComponents(const std::vector<VertexId>& labels);

}  // namespace gab

#endif  // GAB_ALGOS_WCC_H_
