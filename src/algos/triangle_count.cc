#include "algos/triangle_count.h"

#include <algorithm>

#include "util/logging.h"

namespace gab {

uint64_t TriangleCountReference(const CsrGraph& g) {
  GAB_CHECK(g.is_undirected());
  uint64_t triangles = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nu = g.OutNeighbors(u);
    size_t u_hi = std::upper_bound(nu.begin(), nu.end(), u) - nu.begin();
    auto fu = nu.subspan(u_hi);  // neighbors of u with id > u
    for (size_t a = 0; a < fu.size(); ++a) {
      VertexId v = fu[a];
      auto nv = g.OutNeighbors(v);
      size_t v_hi = std::upper_bound(nv.begin(), nv.end(), v) - nv.begin();
      auto fv = nv.subspan(v_hi);
      // |{w : w > v, w in N(u), w in N(v)}|
      size_t i = a + 1;  // fu entries > v start right after v itself
      size_t j = 0;
      while (i < fu.size() && j < fv.size()) {
        if (fu[i] < fv[j]) {
          ++i;
        } else if (fu[i] > fv[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace gab
