#include "algos/triangle_count.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel_primitives.h"
#include "util/threading.h"

namespace gab {

namespace {

// Orientation rank: edges point from lower to higher (degree, id), so every
// forward list has O(sqrt(m)) length on skewed graphs and each triangle is
// counted exactly once at its lowest-ranked corner.
inline bool RankLess(const std::vector<EdgeId>& offsets, VertexId a,
                     VertexId b) {
  const EdgeId da = offsets[a + 1] - offsets[a];
  const EdgeId db = offsets[b + 1] - offsets[b];
  if (da != db) return da < db;
  return a < b;
}

}  // namespace

uint64_t TriangleCountReference(const CsrGraph& g) {
  GAB_CHECK(g.is_undirected());
  const VertexId n = g.num_vertices();
  if (n == 0) return 0;
  const auto& offsets = g.out_offsets();

  // Build the degree-oriented DAG: forward neighbors only, sorted by rank
  // so intersections run as linear merges.
  std::vector<EdgeId> fwd_offsets(static_cast<size_t>(n) + 1, 0);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      EdgeId count = 0;
      for (VertexId w : g.OutNeighbors(v)) {
        if (RankLess(offsets, static_cast<VertexId>(v), w)) ++count;
      }
      fwd_offsets[v + 1] = count;
    }
  });
  ParallelInclusiveScan(fwd_offsets);
  std::vector<VertexId> fwd(fwd_offsets[n]);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      EdgeId pos = fwd_offsets[v];
      for (VertexId w : g.OutNeighbors(v)) {
        if (RankLess(offsets, static_cast<VertexId>(v), w)) fwd[pos++] = w;
      }
      std::sort(fwd.begin() + fwd_offsets[v], fwd.begin() + pos,
                [&](VertexId a, VertexId b) { return RankLess(offsets, a, b); });
    }
  });

  // Count: for each forward edge (u, v), intersect the two rank-sorted
  // forward lists. Per-worker partials of an integer sum, so the total is
  // exact and thread-count independent.
  const size_t workers = DefaultPool().num_threads();
  std::vector<uint64_t> partial(workers, 0);
  DefaultPool().RunTasks(
      std::max<size_t>(size_t{1}, workers * 8), [&](size_t task, size_t worker) {
        const size_t tasks = std::max<size_t>(size_t{1}, workers * 8);
        const VertexId lo = static_cast<VertexId>(n * task / tasks);
        const VertexId hi = static_cast<VertexId>(n * (task + 1) / tasks);
        uint64_t local = 0;
        for (VertexId u = lo; u < hi; ++u) {
          const EdgeId u_begin = fwd_offsets[u];
          const EdgeId u_end = fwd_offsets[u + 1];
          for (EdgeId a = u_begin; a < u_end; ++a) {
            const VertexId v = fwd[a];
            // |fwd(u) ∩ fwd(v)| by merge over the shared rank order.
            EdgeId i = a + 1;  // entries ranked above v start after v
            EdgeId j = fwd_offsets[v];
            const EdgeId j_end = fwd_offsets[v + 1];
            while (i < u_end && j < j_end) {
              if (fwd[i] == fwd[j]) {
                ++local;
                ++i;
                ++j;
              } else if (RankLess(offsets, fwd[i], fwd[j])) {
                ++i;
              } else {
                ++j;
              }
            }
          }
        }
        partial[worker] += local;
      });
  uint64_t triangles = 0;
  for (uint64_t p : partial) triangles += p;
  return triangles;
}

}  // namespace gab
