#include "algos/bc.h"

#include <cstdint>
#include <limits>
#include <queue>

namespace gab {

std::vector<double> BcReference(const CsrGraph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<double> delta(n, 0.0);
  if (n == 0) return delta;

  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> dist(n, kUnvisited);
  std::vector<double> sigma(n, 0.0);
  std::vector<VertexId> order;  // vertices in BFS (non-decreasing distance)
  order.reserve(n);

  dist[source] = 0;
  sigma[source] = 1.0;
  std::queue<VertexId> queue;
  queue.push(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnvisited) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  // Backward accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VertexId w = *it;
    for (VertexId v : g.OutNeighbors(w)) {
      if (dist[v] + 1 == dist[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
    }
  }
  delta[source] = 0.0;
  return delta;
}

}  // namespace gab
