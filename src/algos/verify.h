#ifndef GAB_ALGOS_VERIFY_H_
#define GAB_ALGOS_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace gab {

/// Result of comparing a platform's output against the reference
/// implementation. `ok` plus a human-readable first-mismatch description.
struct VerifyResult {
  bool ok = true;
  std::string detail;

  static VerifyResult Ok() { return {}; }
  static VerifyResult Fail(std::string detail) {
    return {false, std::move(detail)};
  }
};

/// Element-wise comparison of floating-point vectors (PR, BC) with a
/// combined absolute/relative tolerance.
VerifyResult CompareDoubles(const std::vector<double>& actual,
                            const std::vector<double>& expected,
                            double rel_tol = 1e-9, double abs_tol = 1e-12);

/// Exact comparison of integer outputs (SSSP distances, coreness, labels).
VerifyResult CompareExact(const std::vector<uint64_t>& actual,
                          const std::vector<uint64_t>& expected);

/// Compares two labelings as *partitions*: labels may differ as long as
/// they induce the same groups (used for LPA, where synchronous ties make
/// labels canonical, as a second line of defense).
VerifyResult ComparePartitions(const std::vector<uint64_t>& actual,
                               const std::vector<uint64_t>& expected);

}  // namespace gab

#endif  // GAB_ALGOS_VERIFY_H_
