#ifndef GAB_ALGOS_VERIFY_H_
#define GAB_ALGOS_VERIFY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/exec_mode.h"

namespace gab {

/// Result of comparing a platform's output against the reference
/// implementation. `ok` plus a human-readable first-mismatch description.
struct VerifyResult {
  bool ok = true;
  std::string detail;

  static VerifyResult Ok() { return {}; }
  static VerifyResult Fail(std::string detail) {
    return {false, std::move(detail)};
  }
};

/// Element-wise comparison of floating-point vectors (PR, BC) with a
/// combined absolute/relative tolerance.
VerifyResult CompareDoubles(const std::vector<double>& actual,
                            const std::vector<double>& expected,
                            double rel_tol = 1e-9, double abs_tol = 1e-12);

/// Exact comparison of integer outputs (SSSP distances, coreness, labels).
VerifyResult CompareExact(const std::vector<uint64_t>& actual,
                          const std::vector<uint64_t>& expected);

/// Compares two labelings as *partitions*: labels may differ as long as
/// they induce the same groups (used for LPA, where synchronous ties make
/// labels canonical, as a second line of defense).
VerifyResult ComparePartitions(const std::vector<uint64_t>& actual,
                               const std::vector<uint64_t>& expected);

/// --- Strict/relaxed equivalence (util/exec_mode.h) ---
///
/// GAB_EXEC_MODE=relaxed drops the engines' ordered frontier merging; the
/// contract it keeps is *convergence*: monotone fixed-point kernels (BFS
/// levels, SSSP distances, WCC labels — all driven by commutative
/// first-writer/min updates) must produce byte-identical outputs, and
/// accumulation-order-sensitive float kernels (PR, BC) must stay within a
/// small divergence bound. These helpers are that contract, executable:
/// tests run them on every kernel and the benches run them after each
/// relaxed measurement.

/// Exact fixed-point equivalence; `label` names the kernel in the failure
/// detail (e.g. "bfs levels").
VerifyResult VerifyFixedPoint(const std::vector<uint64_t>& strict_out,
                              const std::vector<uint64_t>& relaxed_out,
                              const std::string& label);

/// Bounded float divergence: every element within max_abs + 1e-7 * |strict|
/// (relative term covers magnitude-proportional rounding drift).
VerifyResult VerifyBoundedDivergence(const std::vector<double>& strict_out,
                                     const std::vector<double>& relaxed_out,
                                     double max_abs,
                                     const std::string& label);

/// Runs `kernel` (no arguments, returns its output) with the process exec
/// mode scoped to `mode`, restoring the previous mode on return. The
/// standard shape for equivalence checks:
///   auto s = RunInExecMode(ExecMode::kStrict, run);
///   auto r = RunInExecMode(ExecMode::kRelaxed, run);
///   VerifyFixedPoint(s, r, "bfs levels");
template <typename Kernel>
auto RunInExecMode(ExecMode mode, Kernel&& kernel) {
  ScopedExecMode scope(mode);
  return std::forward<Kernel>(kernel)();
}

}  // namespace gab

#endif  // GAB_ALGOS_VERIFY_H_
