#include "algos/kclique.h"

#include <algorithm>
#include <vector>

#include "algos/core_decomposition.h"
#include "util/logging.h"

namespace gab {

namespace {

// Counts cliques of `remaining` more vertices extendable from `candidates`
// (sorted in orientation rank). adjacency(v) yields v's oriented sorted
// out-neighborhood.
uint64_t CountFrom(const std::vector<std::vector<VertexId>>& oriented,
                   const std::vector<VertexId>& rank,
                   const std::vector<VertexId>& candidates,
                   uint32_t remaining) {
  if (remaining == 1) return candidates.size();
  uint64_t total = 0;
  std::vector<VertexId> next;
  for (size_t i = 0; i < candidates.size(); ++i) {
    VertexId v = candidates[i];
    const auto& nv = oriented[v];
    // next = candidates ∩ oriented-out(v); both lists are sorted by rank,
    // so a rank-comparing merge intersects them in linear time.
    next.clear();
    size_t a = i + 1;
    size_t b = 0;
    while (a < candidates.size() && b < nv.size()) {
      if (rank[candidates[a]] < rank[nv[b]]) {
        ++a;
      } else if (rank[candidates[a]] > rank[nv[b]]) {
        ++b;
      } else {
        next.push_back(candidates[a]);
        ++a;
        ++b;
      }
    }
    if (next.size() + 1 >= remaining) {
      total += CountFrom(oriented, rank, next, remaining - 1);
    }
  }
  return total;
}

}  // namespace

uint64_t KCliqueCountReference(const CsrGraph& g, uint32_t k) {
  GAB_CHECK(g.is_undirected());
  GAB_CHECK(k >= 2);
  const VertexId n = g.num_vertices();
  if (n == 0) return 0;

  // Orient edges along the degeneracy order: rank[v] < rank[u] => v -> u.
  std::vector<VertexId> order = DegeneracyOrder(g);
  std::vector<VertexId> rank(n);
  for (VertexId i = 0; i < n; ++i) rank[order[i]] = i;

  // oriented[v] = out-neighbors of v (later in degeneracy order), stored as
  // vertex ids but sorted by *rank* so intersections stay rank-sorted.
  std::vector<std::vector<VertexId>> oriented(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.OutNeighbors(v)) {
      if (rank[u] > rank[v]) oriented[v].push_back(u);
    }
    std::sort(oriented[v].begin(), oriented[v].end(),
              [&](VertexId a, VertexId b) { return rank[a] < rank[b]; });
  }

  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (oriented[v].size() + 1 < k) continue;
    total += CountFrom(oriented, rank, oriented[v], k - 1);
  }
  return total;
}

}  // namespace gab
