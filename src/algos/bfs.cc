#include "algos/bfs.h"

#include <queue>

namespace gab {

std::vector<uint32_t> BfsReference(const CsrGraph& g, VertexId source) {
  std::vector<uint32_t> level(g.num_vertices(), kUnreachedLevel);
  if (g.num_vertices() == 0) return level;
  std::queue<VertexId> queue;
  level[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (VertexId v : g.OutNeighbors(u)) {
      if (level[v] != kUnreachedLevel) continue;
      level[v] = level[u] + 1;
      queue.push(v);
    }
  }
  return level;
}

}  // namespace gab
