#include "algos/bfs.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <queue>
#include <vector>

#include "obs/telemetry.h"
#include "util/atomic_bitset.h"
#include "util/threading.h"

namespace gab {

std::vector<uint32_t> BfsReference(const CsrGraph& g, VertexId source) {
  std::vector<uint32_t> level(g.num_vertices(), kUnreachedLevel);
  if (g.num_vertices() == 0) return level;
  std::queue<VertexId> queue;
  level[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (VertexId v : g.OutNeighbors(u)) {
      if (level[v] != kUnreachedLevel) continue;
      level[v] = level[u] + 1;
      queue.push(v);
    }
  }
  return level;
}

namespace {

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return fallback;
}

/// Fixed chunk size for frontier-parallel loops (chunk boundaries never
/// depend on the worker count).
constexpr size_t kChunk = 1024;
/// Vertices per pull-direction chunk.
constexpr size_t kPullChunk = 4096;

/// Runs the chunk loop inline under SerialCutoff() items, on the pool
/// otherwise (dedicated-kernel twin of the engine's serial fast path).
template <typename Fn>
void RunChunked(size_t items, size_t num_chunks, Fn&& fn) {
  if (items <= SerialCutoff()) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c, 0);
    return;
  }
  DefaultPool().RunTasks(num_chunks,
                         [&](size_t c, size_t worker) { fn(c, worker); });
}

}  // namespace

double DefaultBfsAlpha() {
  static const double alpha = EnvDouble("GAB_BFS_ALPHA", 15.0);
  return alpha;
}

double DefaultBfsBeta() {
  static const double beta = EnvDouble("GAB_BFS_BETA", 18.0);
  return beta;
}

std::vector<uint32_t> DirectionOptBfs(const CsrGraph& g, VertexId source,
                                      const DirectionOptBfsOptions& options,
                                      DirectionOptBfsStats* stats) {
  GAB_SPAN("algo.bfs.direction_opt");
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> level(n, kUnreachedLevel);
  if (n == 0) return level;
  const bool can_pull = g.has_in_edges();

  AtomicBitset visited(n);
  visited.Set(source);
  level[source] = 0;

  // Sparse frontier for push rounds; dense bitmap pair for pull rounds.
  std::vector<VertexId> frontier{source};
  AtomicBitset front_bits(n);
  AtomicBitset next_bits(n);
  bool frontier_is_dense = false;
  size_t frontier_size = 1;
  uint64_t frontier_edges = g.OutDegree(source);
  // Out-edge volume still reachable from unexplored vertices — the mu term
  // of Beamer's growth test.
  uint64_t unexplored_edges = g.num_arcs() - frontier_edges;

  uint32_t depth = 0;
  bool pulling = false;
  DirectionOptBfsStats local_stats;

  while (frontier_size != 0) {
    GAB_SPAN_VALUE("algo.bfs.level", depth);
    ++local_stats.rounds;
    // Beamer policy with hysteresis: grow test while pushing, shrink test
    // while pulling.
    if (can_pull) {
      if (!pulling) {
        pulling = static_cast<double>(frontier_edges) >
                  static_cast<double>(unexplored_edges) / options.alpha;
      } else {
        pulling = !(static_cast<double>(frontier_size) <
                    static_cast<double>(n) / options.beta);
      }
    }

    const uint32_t next_level = depth + 1;
    size_t next_size = 0;
    uint64_t next_edges = 0;

    if (pulling) {
      ++local_stats.pull_rounds;
      GAB_COUNT("algo.bfs.pull_rounds", 1);
      if (!frontier_is_dense) {
        // push→pull transition: scatter the sparse frontier into bits.
        front_bits.Clear();
        RunChunked(frontier.size(), (frontier.size() + kChunk - 1) / kChunk,
                   [&](size_t c, size_t) {
                     size_t b = c * kChunk;
                     size_t e = std::min(b + kChunk, frontier.size());
                     for (size_t i = b; i < e; ++i) front_bits.Set(frontier[i]);
                   });
        frontier_is_dense = true;
      }
      const size_t chunks = (static_cast<size_t>(n) + kPullChunk - 1) / kPullChunk;
      std::vector<size_t> count(chunks, 0);
      std::vector<uint64_t> degree(chunks, 0);
      next_bits.Clear();
      RunChunked(n, chunks, [&](size_t c, size_t) {
        const VertexId b = static_cast<VertexId>(c * kPullChunk);
        const VertexId e = static_cast<VertexId>(
            std::min<size_t>(c * kPullChunk + kPullChunk, n));
        size_t found = 0;
        uint64_t deg = 0;
        for (VertexId v = b; v < e; ++v) {
          if (visited.Test(v)) continue;
          for (VertexId u : g.InNeighbors(v)) {
            if (!front_bits.Test(u)) continue;
            // Owner-computes: v belongs to exactly this chunk, and every
            // writer would write the same level, so plain stores suffice.
            level[v] = next_level;
            visited.Set(v);
            next_bits.Set(v);
            ++found;
            deg += g.OutDegree(v);
            break;  // Beamer's early exit: one live parent settles v
          }
        }
        count[c] = found;
        degree[c] = deg;
      });
      for (size_t c = 0; c < chunks; ++c) {
        next_size += count[c];
        next_edges += degree[c];
      }
      std::swap(front_bits, next_bits);
    } else {
      ++local_stats.push_rounds;
      GAB_COUNT("algo.bfs.push_rounds", 1);
      if (frontier_is_dense) {
        // pull→push transition: pack the bitmap into a sparse list.
        frontier.clear();
        frontier.reserve(frontier_size);
        for (size_t w = 0; w < front_bits.num_words(); ++w) {
          uint64_t bits = front_bits.Word(w);
          while (bits != 0) {
            frontier.push_back(static_cast<VertexId>(
                (w << 6) + static_cast<size_t>(__builtin_ctzll(bits))));
            bits &= bits - 1;
          }
        }
        frontier_is_dense = false;
      }
      const size_t chunks = (frontier.size() + kChunk - 1) / kChunk;
      std::vector<std::vector<VertexId>> next(chunks);
      std::vector<uint64_t> degree(chunks, 0);
      RunChunked(frontier.size(), chunks, [&](size_t c, size_t) {
        const size_t b = c * kChunk;
        const size_t e = std::min(b + kChunk, frontier.size());
        uint64_t deg = 0;
        for (size_t i = b; i < e; ++i) {
          for (VertexId v : g.OutNeighbors(frontier[i])) {
            // TestAndSet dedups claims; every claimer writes the same
            // level, so the level array is schedule-independent.
            if (visited.TestAndSet(v)) {
              level[v] = next_level;
              next[c].push_back(v);
              deg += g.OutDegree(v);
            }
          }
        }
        degree[c] = deg;
      });
      std::vector<VertexId> merged;
      size_t total = 0;
      for (const auto& nx : next) total += nx.size();
      merged.reserve(total);
      for (auto& nx : next) {
        merged.insert(merged.end(), nx.begin(), nx.end());
      }
      frontier = std::move(merged);
      next_size = total;
      for (uint64_t d : degree) next_edges += d;
    }

    unexplored_edges -= std::min(unexplored_edges, next_edges);
    frontier_size = next_size;
    frontier_edges = next_edges;
    ++depth;
  }

  GAB_GAUGE_SET("algo.bfs.depth", depth);
  if (stats != nullptr) *stats = local_stats;
  return level;
}

}  // namespace gab
