#ifndef GAB_ALGOS_KCLIQUE_H_
#define GAB_ALGOS_KCLIQUE_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace gab {

/// The clique size the benchmark reports by default (k = 4; k = 3 would
/// duplicate TC and larger k explodes combinatorially on dense datasets).
inline constexpr uint32_t kDefaultCliqueSize = 4;

/// Reference k-clique count of an undirected graph. Enumerates over the
/// degeneracy orientation (each edge directed from earlier to later in
/// degeneracy order), recursively intersecting candidate sets — the
/// standard Chiba–Nishizeki / kClist scheme, exact and duplicate-free.
uint64_t KCliqueCountReference(const CsrGraph& g,
                               uint32_t k = kDefaultCliqueSize);

}  // namespace gab

#endif  // GAB_ALGOS_KCLIQUE_H_
