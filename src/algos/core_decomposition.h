#ifndef GAB_ALGOS_CORE_DECOMPOSITION_H_
#define GAB_ALGOS_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Reference core decomposition: the coreness of every vertex (the largest
/// k such that the vertex belongs to the k-core), computed with the
/// O(n + m) bucket-peeling algorithm of Batagelj–Zaversnik. The benchmark
/// (paper §7.2) peels from coreness 1 upward until the graph is empty.
std::vector<uint32_t> CoreDecompositionReference(const CsrGraph& g);

/// Largest coreness value in the graph (the degeneracy).
uint32_t Degeneracy(const CsrGraph& g);

/// Vertex order of increasing coreness removal (degeneracy order); used by
/// the k-clique reference to bound enumeration work.
std::vector<VertexId> DegeneracyOrder(const CsrGraph& g);

}  // namespace gab

#endif  // GAB_ALGOS_CORE_DECOMPOSITION_H_
