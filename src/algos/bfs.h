#ifndef GAB_ALGOS_BFS_H_
#define GAB_ALGOS_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Level of unreached vertices in a BFS result.
inline constexpr uint32_t kUnreachedLevel = 0xffffffffu;

/// Reference breadth-first search: hop distance from `source` per vertex.
/// BFS is one of LDBC Graphalytics' six core algorithms; this benchmark
/// replaces it (paper Section 3: BFS is subsumed by SSSP's traversal
/// coverage) but implements it for the LDBC-compatibility comparison in
/// bench_ablation_diversity.
std::vector<uint32_t> BfsReference(const CsrGraph& g, VertexId source);

/// Beamer thresholds for direction-optimizing BFS, read once from
/// GAB_BFS_ALPHA / GAB_BFS_BETA (defaults 15 / 18, the values from the
/// original direction-optimizing BFS paper that GAP also ships).
double DefaultBfsAlpha();
double DefaultBfsBeta();

struct DirectionOptBfsOptions {
  /// Switch push→pull when frontier out-edges > unexplored edges / alpha.
  double alpha = DefaultBfsAlpha();
  /// Switch pull→push when frontier size < num_vertices / beta.
  double beta = DefaultBfsBeta();
};

/// Per-run direction telemetry (tests assert the optimizer switched on
/// hub-heavy graphs and stayed push-only on chains).
struct DirectionOptBfsStats {
  uint32_t rounds = 0;
  uint32_t push_rounds = 0;
  uint32_t pull_rounds = 0;
};

/// Direction-optimizing BFS (Beamer): level-synchronous traversal that
/// pushes from small frontiers and pulls into unexplored vertices when the
/// frontier's out-edge volume passes the alpha threshold, with bitmap
/// frontiers in pull rounds. Runs on DefaultPool(); the level array is
/// schedule-independent (every writer of a vertex writes the same level),
/// so the output is bit-identical at every GAB_THREADS in both exec modes.
/// Falls back to push-only when the graph is directed without in-edges.
std::vector<uint32_t> DirectionOptBfs(
    const CsrGraph& g, VertexId source,
    const DirectionOptBfsOptions& options = DirectionOptBfsOptions(),
    DirectionOptBfsStats* stats = nullptr);

}  // namespace gab

#endif  // GAB_ALGOS_BFS_H_
