#ifndef GAB_ALGOS_BFS_H_
#define GAB_ALGOS_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace gab {

/// Level of unreached vertices in a BFS result.
inline constexpr uint32_t kUnreachedLevel = 0xffffffffu;

/// Reference breadth-first search: hop distance from `source` per vertex.
/// BFS is one of LDBC Graphalytics' six core algorithms; this benchmark
/// replaces it (paper Section 3: BFS is subsumed by SSSP's traversal
/// coverage) but implements it for the LDBC-compatibility comparison in
/// bench_ablation_diversity.
std::vector<uint32_t> BfsReference(const CsrGraph& g, VertexId source);

}  // namespace gab

#endif  // GAB_ALGOS_BFS_H_
