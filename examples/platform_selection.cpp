// Platform selection advisor (paper Section 9): run a miniature version
// of the benchmark on the user's own workload profile and print a
// recommendation, mirroring the paper's guidance ("Grape for maximum
// performance despite its learning curve, GraphX for usability, ...").
//
//   ./build/examples/platform_selection [iterative|sequential|subgraph]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "gab/gab.h"

int main(int argc, char** argv) {
  using namespace gab;
  const char* profile = argc > 1 ? argv[1] : "iterative";
  AlgorithmClass wanted = AlgorithmClass::kIterative;
  if (std::strcmp(profile, "sequential") == 0) {
    wanted = AlgorithmClass::kSequential;
  } else if (std::strcmp(profile, "subgraph") == 0) {
    wanted = AlgorithmClass::kSubgraph;
  }
  std::printf("workload profile: %s algorithms\n",
              AlgorithmClassName(wanted));

  CsrGraph graph = BuildDataset(StdDataset(5));
  AlgoParams params;

  // Performance: geometric-mean runtime over the class's algorithms.
  std::map<std::string, double> perf;
  std::map<std::string, int> coverage;
  for (const Platform* platform : AllPlatforms()) {
    std::vector<double> times;
    for (Algorithm algo : AllAlgorithms()) {
      if (ClassOf(algo) != wanted) continue;
      if (!platform->Supports(algo)) continue;
      times.push_back(platform->Run(algo, graph, params).seconds);
      ++coverage[platform->abbrev()];
    }
    if (!times.empty()) perf[platform->abbrev()] = GeometricMean(times);
  }

  // Usability: junior-level weighted score (how fast a new team ramps up).
  UsabilityReport usability = RunUsabilityEvaluation(32, 11);
  std::vector<double> junior = usability.WeightedRow(PromptLevel::kJunior);

  std::printf("\n%-12s %-10s %-12s %-10s\n", "Platform", "Coverage",
              "GeoMeanTime", "JuniorScore");
  std::vector<std::pair<double, std::string>> candidates;
  size_t i = 0;
  for (const Platform* platform : AllPlatforms()) {
    std::string ab = platform->abbrev();
    double junior_score = junior[i++];
    if (perf.find(ab) == perf.end()) {
      std::printf("%-12s (does not support this class)\n",
                  platform->name().c_str());
      continue;
    }
    std::printf("%-12s %d algos     %.4fs      %.1f\n",
                platform->name().c_str(), coverage[ab], perf[ab],
                junior_score);
    // Composite: fast is good, usable is good.
    double best_time = 1e30;
    for (const auto& [_, t] : perf) best_time = std::min(best_time, t);
    candidates.push_back(
        {0.6 * best_time / perf[ab] + 0.4 * junior_score / 100.0, ab});
  }
  std::sort(candidates.rbegin(), candidates.rend());
  std::printf("\nrecommendation for %s workloads: %s", profile,
              PlatformByAbbrev(candidates.front().second)->name().c_str());
  if (candidates.size() > 1) {
    std::printf(" (runner-up: %s)",
                PlatformByAbbrev(candidates[1].second)->name().c_str());
  }
  std::printf("\n(paper Section 9: performance-usability trade-offs differ "
              "per class — rerun with another profile argument)\n");
  return 0;
}
