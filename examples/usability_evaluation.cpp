// Driving the API-usability framework directly (paper Section 5): build a
// prompt, inspect the simulated code generator's artifact, score it with
// the code evaluator, and run the full multi-level pipeline for one
// platform.
//
//   ./build/examples/usability_evaluation

#include <cstdio>

#include "gab/gab.h"
#include "usability/api_spec.h"
#include "usability/codegen_sim.h"
#include "usability/evaluator.h"

int main() {
  using namespace gab;

  // 1. The prompt a (simulated) LLM receives at each level.
  std::printf("=== Senior-level prompt ===\n%s\n",
              RenderPrompt(SpecForLevel(PromptLevel::kSenior),
                           "Implement the PageRank algorithm on this "
                           "platform")
                  .c_str());

  // 2. One generation + evaluation, token by token.
  const ApiSpec& grape = ApiSpecByAbbrev("GR");
  std::printf("=== One generation against %s (junior prompt) ===\n",
              grape.platform.c_str());
  GeneratedCode code = SimulateCodeGeneration(
      grape, SpecForLevel(PromptLevel::kJunior), /*seed=*/7);
  std::printf("effective knowledge: %.2f\n", code.knowledge);
  const char* outcome_names[] = {"correct", "misused", "hallucinated",
                                 "generic-fallback"};
  for (size_t i = 0; i < code.tokens.size(); ++i) {
    std::printf("  API call %zu: %s\n", i + 1,
                outcome_names[static_cast<int>(code.tokens[i])]);
  }
  UsabilityScores scores = EvaluateCode(code, grape);
  std::printf("scores: compliance %.1f, correctness %.1f, readability "
              "%.1f -> weighted %.1f\n\n",
              scores.compliance, scores.correctness, scores.readability,
              scores.Weighted());

  // 3. The full framework for every level of one platform.
  UsabilityReport report = RunUsabilityEvaluation(/*trials=*/64, /*seed=*/1);
  std::printf("=== %s across prompt levels (64 trials each) ===\n",
              grape.platform.c_str());
  for (PromptLevel level : AllPromptLevels()) {
    const UsabilityScores& s = report.Cell("GR", level).scores;
    std::printf("  %-12s weighted %.1f\n", PromptLevelName(level),
                s.Weighted());
  }
  std::printf("\n(the steep junior-to-expert climb is the paper's Grape "
              "finding: powerful once mastered)\n");
  return 0;
}
