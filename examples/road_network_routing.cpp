// Road network routing scenario (paper Section 3.1's fourth motivating
// application): large-diameter graphs are where platform choice matters
// most for the sequential algorithm class. This example builds a
// road-network-like graph with FFT-DG's diameter control, compares SSSP
// across a vertex-centric and a block-centric platform, and checks
// reachability with WCC.
//
//   ./build/examples/road_network_routing

#include <cstdio>

#include "gab/gab.h"

int main() {
  using namespace gab;

  // A long, weakly-meshed network: diameter target ~150 hops.
  FftDgConfig config;
  config.num_vertices = 30000;
  config.alpha = 10.0;
  config.target_diameter = 150;
  config.weighted = true;  // travel times
  config.seed = 7;
  CsrGraph roads = GraphBuilder::Build(GenerateFftDg(config));
  std::printf("road network: %u junctions, %llu segments, diameter ~%u\n",
              roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_edges()),
              ApproxDiameter(roads));

  AlgoParams params;
  params.source = 0;

  // SSSP: the paper's headline block-centric result — Grape's local
  // Dijkstra is insensitive to the diameter while vertex-centric
  // platforms pay one superstep per wavefront hop.
  std::printf("\nshortest travel times from junction 0:\n");
  for (const char* abbrev : {"PP", "GR"}) {
    const Platform* platform = PlatformByAbbrev(abbrev);
    RunResult result = platform->Run(Algorithm::kSssp, roads, params);
    VerifyResult verdict = ExperimentExecutor::Verify(Algorithm::kSssp,
                                                      roads, params,
                                                      result.output);
    std::printf("  %-10s: %.4fs over %zu supersteps (verified=%s)\n",
                platform->name().c_str(), result.seconds,
                result.trace.num_supersteps(), verdict.ok ? "yes" : "NO");
  }

  // Reachability: WCC tells us whether the network is fully connected
  // (FFT-DG's chain edges guarantee it here).
  const Platform* grape = PlatformByAbbrev("GR");
  AlgoOutput wcc = grape->Run(Algorithm::kWcc, roads, params).output;
  size_t components = CountComponents(
      std::vector<VertexId>(wcc.ints.begin(), wcc.ints.end()));
  std::printf("\nconnectivity check: %zu connected component%s\n",
              components, components == 1 ? "" : "s");

  // Congestion hotspots: junctions on many shortest paths from a depot.
  AlgoOutput bc = grape->Run(Algorithm::kBc, roads, params).output;
  VertexId hotspot = 0;
  for (VertexId v = 0; v < roads.num_vertices(); ++v) {
    if (bc.doubles[v] > bc.doubles[hotspot]) hotspot = v;
  }
  std::printf("likely congestion hotspot from depot 0: junction %u "
              "(on %.0f weighted shortest-path dependencies)\n",
              hotspot, bc.doubles[hotspot]);
  return 0;
}
