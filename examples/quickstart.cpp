// Quickstart: generate a benchmark dataset with FFT-DG, run PageRank on
// two platforms, verify both against the reference implementation, and
// look at the numbers the benchmark would report.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "gab/gab.h"
#include "util/threading.h"

int main() {
  using namespace gab;

  // 1. Generate a graph with the paper's FFT-DG generator: 10k vertices,
  //    density factor 10 (the "Std" social-network setting), weighted.
  FftDgConfig config;
  config.num_vertices = 10000;
  config.alpha = 10.0;
  config.weighted = true;
  config.seed = 42;
  GenStats gen_stats;
  EdgeList edges = GenerateFftDg(config, &gen_stats);
  CsrGraph graph = GraphBuilder::Build(std::move(edges));
  std::printf("generated %u vertices, %llu edges (%.2f trials/edge)\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              gen_stats.TrialsPerEdge());

  // 2. Run PageRank on two platforms with different computing models.
  AlgoParams params;  // paper defaults: 10 iterations, damping 0.85
  for (const char* abbrev : {"LI", "GR"}) {
    const Platform* platform = PlatformByAbbrev(abbrev);
    ExperimentRecord record = ExperimentExecutor::Execute(
        *platform, Algorithm::kPageRank, graph, "quickstart", params);
    VerifyResult verdict = ExperimentExecutor::Verify(
        Algorithm::kPageRank, graph, params, record.run.output);
    std::printf("%-10s (%s): %.4fs, %.2e edges/s, verified=%s\n",
                platform->name().c_str(),
                ComputeModelName(platform->model()),
                record.timing.running_seconds, record.throughput_eps,
                verdict.ok ? "yes" : verdict.detail.c_str());
  }

  // 3. Ask the cluster simulator what the same run would cost on the
  //    paper's 16-machine testbed.
  const Platform* grape = PlatformByAbbrev("GR");
  ExperimentRecord record = ExperimentExecutor::Execute(
      *grape, Algorithm::kPageRank, graph, "quickstart", params);
  ClusterConfig measured_on{1, static_cast<uint32_t>(
                                   DefaultPool().num_threads())};
  for (uint32_t machines : {1u, 4u, 16u}) {
    double t = ExperimentExecutor::SimulateOnCluster(record, *grape,
                                                     measured_on,
                                                     {machines, 32});
    std::printf("Grape PageRank on %2u machines x 32 threads: ~%.4fs\n",
                machines, t);
  }
  return 0;
}
