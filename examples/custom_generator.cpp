// Using the data-generation toolkit directly (paper Section 4): sweep
// FFT-DG's density and diameter knobs, compare its community structure
// against LDBC-DG's with the similarity pipeline, and persist a dataset
// to disk in both supported formats.
//
//   ./build/examples/custom_generator

#include <cstdio>

#include "gab/gab.h"

int main() {
  using namespace gab;

  // Density knob: the same vertex set at three densities.
  std::printf("density sweep (n = 20,000):\n");
  for (double alpha : {1.0, 30.0, 1000.0}) {
    FftDgConfig config;
    config.num_vertices = 20000;
    config.alpha = alpha;
    config.seed = 1;
    GenStats stats;
    EdgeList el = GenerateFftDg(config, &stats);
    std::printf("  alpha=%-6g -> %8llu edges (%.2f trials/edge)\n", alpha,
                static_cast<unsigned long long>(stats.edges),
                stats.TrialsPerEdge());
    (void)el;
  }

  // Diameter knob.
  std::printf("\ndiameter sweep (n = 20,000, alpha = 10):\n");
  for (uint32_t target : {0u, 60u, 120u}) {
    FftDgConfig config;
    config.num_vertices = 20000;
    config.target_diameter = target;
    config.seed = 1;
    CsrGraph g = GraphBuilder::Build(GenerateFftDg(config));
    std::printf("  target=%-4u -> measured diameter %u (%u groups)\n",
                target, ApproxDiameter(g), FftDgGroupCount(config));
  }

  // Community-similarity spot check: clustering coefficient of FFT-DG vs
  // LDBC-DG at comparable size (the full pipeline is
  // bench_table8_fig7_similarity).
  FftDgConfig fft_config;
  fft_config.num_vertices = 20000;
  fft_config.seed = 2;
  CsrGraph fft = GraphBuilder::Build(GenerateFftDg(fft_config));
  LdbcDgConfig ldbc_config = LdbcConfigForAlpha(20000, 10);
  ldbc_config.seed = 2;
  CsrGraph ldbc = GraphBuilder::Build(GenerateLdbcDg(ldbc_config));
  std::printf("\nclustering coefficient: FFT-DG %.3f vs LDBC-DG %.3f\n",
              AverageLocalClusteringCoefficient(fft),
              AverageLocalClusteringCoefficient(ldbc));

  // Persistence round trip.
  FftDgConfig small;
  small.num_vertices = 2000;
  small.weighted = true;
  small.seed = 3;
  EdgeList dataset = GenerateFftDg(small);
  std::string text_path = "/tmp/gab_example_dataset.txt";
  std::string bin_path = "/tmp/gab_example_dataset.bin";
  Status s1 = WriteEdgeListText(dataset, text_path);
  Status s2 = WriteEdgeListBinary(dataset, bin_path);
  std::printf("\nwrote %s (%s) and %s (%s)\n", text_path.c_str(),
              s1.ToString().c_str(), bin_path.c_str(),
              s2.ToString().c_str());
  EdgeList reloaded;
  Status s3 = ReadEdgeListBinary(bin_path, &reloaded);
  std::printf("reload: %s, %llu edges, identical=%s\n",
              s3.ToString().c_str(),
              static_cast<unsigned long long>(reloaded.num_edges()),
              reloaded.edges() == dataset.edges() ? "yes" : "no");
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  return 0;
}
