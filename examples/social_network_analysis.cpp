// Social network analysis scenario (paper Section 3.1's first motivating
// application): on a social-network-like graph, find influencers with
// PageRank and single-source Betweenness Centrality, communities with LPA,
// and tightly-knit circles with k-clique counting — each on the platform
// class the paper recommends for it.
//
//   ./build/examples/social_network_analysis

#include <algorithm>
#include <cstdio>

#include "gab/gab.h"

int main() {
  using namespace gab;

  // A mid-sized "Std" social network.
  CsrGraph graph = BuildDataset(StdDataset(5));
  std::printf("social graph: %u users, %llu friendships\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  AlgoParams params;

  // Influencers by PageRank, on a vertex-centric platform (the paper's
  // iterative class maps naturally onto it).
  const Platform* pregel = PlatformByAbbrev("PP");
  AlgoOutput pr =
      pregel->Run(Algorithm::kPageRank, graph, params).output;
  std::vector<VertexId> by_rank(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(), [&](VertexId a, VertexId b) {
    return pr.doubles[a] > pr.doubles[b];
  });
  std::printf("\ntop-5 influencers by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  user %-6u rank %.3e (degree %zu)\n", by_rank[i],
                pr.doubles[by_rank[i]], graph.OutDegree(by_rank[i]));
  }

  // Brokers by betweenness from the top influencer.
  params.source = by_rank[0];
  AlgoOutput bc = pregel->Run(Algorithm::kBc, graph, params).output;
  VertexId broker = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (bc.doubles[v] > bc.doubles[broker]) broker = v;
  }
  std::printf("\nbiggest broker of user %u's shortest paths: user %u "
              "(dependency %.1f)\n",
              params.source, broker, bc.doubles[broker]);

  // Communities with LPA (block-centric Grape: the generator's locality
  // makes its range blocks align with the real communities).
  params = AlgoParams();
  const Platform* grape = PlatformByAbbrev("GR");
  AlgoOutput lpa = grape->Run(Algorithm::kLpa, graph, params).output;
  std::vector<uint64_t> labels = lpa.ints;
  std::sort(labels.begin(), labels.end());
  size_t communities = 1;
  size_t largest = 1;
  size_t run = 1;
  for (size_t i = 1; i < labels.size(); ++i) {
    if (labels[i] == labels[i - 1]) {
      ++run;
    } else {
      largest = std::max(largest, run);
      run = 1;
      ++communities;
    }
  }
  largest = std::max(largest, run);
  std::printf("\nLPA found %zu communities; the largest has %zu members\n",
              communities, largest);

  // Tight circles: triangles and 4-cliques on the subgraph-centric
  // platform built for mining.
  const Platform* gthinker = PlatformByAbbrev("GT");
  uint64_t triangles =
      gthinker->Run(Algorithm::kTc, graph, params).output.scalar;
  uint64_t cliques =
      gthinker->Run(Algorithm::kKc, graph, params).output.scalar;
  std::printf("\ncohesion: %llu triangles, %llu four-person circles\n",
              static_cast<unsigned long long>(triangles),
              static_cast<unsigned long long>(cliques));
  return 0;
}
