file(REMOVE_RECURSE
  "../bench/bench_stress"
  "../bench/bench_stress.pdb"
  "CMakeFiles/bench_stress.dir/bench_stress.cc.o"
  "CMakeFiles/bench_stress.dir/bench_stress.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
