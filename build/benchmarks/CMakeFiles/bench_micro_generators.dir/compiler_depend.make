# Empty compiler generated dependencies file for bench_micro_generators.
# This may be replaced when dependencies are built.
