file(REMOVE_RECURSE
  "../bench/bench_micro_generators"
  "../bench/bench_micro_generators.pdb"
  "CMakeFiles/bench_micro_generators.dir/bench_micro_generators.cc.o"
  "CMakeFiles/bench_micro_generators.dir/bench_micro_generators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
