file(REMOVE_RECURSE
  "../bench/bench_fig14_overall"
  "../bench/bench_fig14_overall.pdb"
  "CMakeFiles/bench_fig14_overall.dir/bench_fig14_overall.cc.o"
  "CMakeFiles/bench_fig14_overall.dir/bench_fig14_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
