file(REMOVE_RECURSE
  "../bench/bench_ablation_generator"
  "../bench/bench_ablation_generator.pdb"
  "CMakeFiles/bench_ablation_generator.dir/bench_ablation_generator.cc.o"
  "CMakeFiles/bench_ablation_generator.dir/bench_ablation_generator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
