# Empty dependencies file for bench_fig10_algorithm_impact.
# This may be replaced when dependencies are built.
