# Empty dependencies file for bench_table12_fig13_usability.
# This may be replaced when dependencies are built.
