file(REMOVE_RECURSE
  "../bench/bench_table12_fig13_usability"
  "../bench/bench_table12_fig13_usability.pdb"
  "CMakeFiles/bench_table12_fig13_usability.dir/bench_table12_fig13_usability.cc.o"
  "CMakeFiles/bench_table12_fig13_usability.dir/bench_table12_fig13_usability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_fig13_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
