file(REMOVE_RECURSE
  "../bench/bench_ablation_engines"
  "../bench/bench_ablation_engines.pdb"
  "CMakeFiles/bench_ablation_engines.dir/bench_ablation_engines.cc.o"
  "CMakeFiles/bench_ablation_engines.dir/bench_ablation_engines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
