file(REMOVE_RECURSE
  "../bench/bench_micro_engines"
  "../bench/bench_micro_engines.pdb"
  "CMakeFiles/bench_micro_engines.dir/bench_micro_engines.cc.o"
  "CMakeFiles/bench_micro_engines.dir/bench_micro_engines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
