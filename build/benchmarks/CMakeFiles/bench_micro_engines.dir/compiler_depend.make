# Empty compiler generated dependencies file for bench_micro_engines.
# This may be replaced when dependencies are built.
