# Empty compiler generated dependencies file for bench_table9_fig8_runtime_similarity.
# This may be replaced when dependencies are built.
