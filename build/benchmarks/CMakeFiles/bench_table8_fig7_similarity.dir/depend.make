# Empty dependencies file for bench_table8_fig7_similarity.
# This may be replaced when dependencies are built.
