# Empty dependencies file for bench_table10_fig11_scaleup.
# This may be replaced when dependencies are built.
