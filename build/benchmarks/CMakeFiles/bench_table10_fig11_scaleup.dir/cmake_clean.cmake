file(REMOVE_RECURSE
  "../bench/bench_table10_fig11_scaleup"
  "../bench/bench_table10_fig11_scaleup.pdb"
  "CMakeFiles/bench_table10_fig11_scaleup.dir/bench_table10_fig11_scaleup.cc.o"
  "CMakeFiles/bench_table10_fig11_scaleup.dir/bench_table10_fig11_scaleup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_fig11_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
