file(REMOVE_RECURSE
  "../bench/bench_upload_makespan"
  "../bench/bench_upload_makespan.pdb"
  "CMakeFiles/bench_upload_makespan.dir/bench_upload_makespan.cc.o"
  "CMakeFiles/bench_upload_makespan.dir/bench_upload_makespan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upload_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
