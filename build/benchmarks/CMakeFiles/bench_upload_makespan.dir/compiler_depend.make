# Empty compiler generated dependencies file for bench_upload_makespan.
# This may be replaced when dependencies are built.
