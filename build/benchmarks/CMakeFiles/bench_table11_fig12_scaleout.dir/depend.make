# Empty dependencies file for bench_table11_fig12_scaleout.
# This may be replaced when dependencies are built.
