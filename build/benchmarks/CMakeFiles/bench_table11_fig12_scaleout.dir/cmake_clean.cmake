file(REMOVE_RECURSE
  "../bench/bench_table11_fig12_scaleout"
  "../bench/bench_table11_fig12_scaleout.pdb"
  "CMakeFiles/bench_table11_fig12_scaleout.dir/bench_table11_fig12_scaleout.cc.o"
  "CMakeFiles/bench_table11_fig12_scaleout.dir/bench_table11_fig12_scaleout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_fig12_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
