# Empty compiler generated dependencies file for gab_graph.
# This may be replaced when dependencies are built.
