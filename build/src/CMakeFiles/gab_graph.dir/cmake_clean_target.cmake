file(REMOVE_RECURSE
  "libgab_graph.a"
)
