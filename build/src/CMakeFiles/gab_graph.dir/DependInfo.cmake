
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/gab_graph.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/gab_graph.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/gab_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/gab_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/CMakeFiles/gab_graph.dir/graph/edge_list.cc.o" "gcc" "src/CMakeFiles/gab_graph.dir/graph/edge_list.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/gab_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/gab_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/gab_graph.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/gab_graph.dir/graph/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
