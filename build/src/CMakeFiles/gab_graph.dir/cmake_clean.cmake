file(REMOVE_RECURSE
  "CMakeFiles/gab_graph.dir/graph/builder.cc.o"
  "CMakeFiles/gab_graph.dir/graph/builder.cc.o.d"
  "CMakeFiles/gab_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/gab_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/gab_graph.dir/graph/edge_list.cc.o"
  "CMakeFiles/gab_graph.dir/graph/edge_list.cc.o.d"
  "CMakeFiles/gab_graph.dir/graph/io.cc.o"
  "CMakeFiles/gab_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/gab_graph.dir/graph/partition.cc.o"
  "CMakeFiles/gab_graph.dir/graph/partition.cc.o.d"
  "libgab_graph.a"
  "libgab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
