file(REMOVE_RECURSE
  "libgab_gen.a"
)
