# Empty compiler generated dependencies file for gab_gen.
# This may be replaced when dependencies are built.
