
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/classic.cc" "src/CMakeFiles/gab_gen.dir/gen/classic.cc.o" "gcc" "src/CMakeFiles/gab_gen.dir/gen/classic.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/gab_gen.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/gab_gen.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/fft_dg.cc" "src/CMakeFiles/gab_gen.dir/gen/fft_dg.cc.o" "gcc" "src/CMakeFiles/gab_gen.dir/gen/fft_dg.cc.o.d"
  "/root/repo/src/gen/ldbc_dg.cc" "src/CMakeFiles/gab_gen.dir/gen/ldbc_dg.cc.o" "gcc" "src/CMakeFiles/gab_gen.dir/gen/ldbc_dg.cc.o.d"
  "/root/repo/src/gen/weights.cc" "src/CMakeFiles/gab_gen.dir/gen/weights.cc.o" "gcc" "src/CMakeFiles/gab_gen.dir/gen/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
