file(REMOVE_RECURSE
  "CMakeFiles/gab_gen.dir/gen/classic.cc.o"
  "CMakeFiles/gab_gen.dir/gen/classic.cc.o.d"
  "CMakeFiles/gab_gen.dir/gen/datasets.cc.o"
  "CMakeFiles/gab_gen.dir/gen/datasets.cc.o.d"
  "CMakeFiles/gab_gen.dir/gen/fft_dg.cc.o"
  "CMakeFiles/gab_gen.dir/gen/fft_dg.cc.o.d"
  "CMakeFiles/gab_gen.dir/gen/ldbc_dg.cc.o"
  "CMakeFiles/gab_gen.dir/gen/ldbc_dg.cc.o.d"
  "CMakeFiles/gab_gen.dir/gen/weights.cc.o"
  "CMakeFiles/gab_gen.dir/gen/weights.cc.o.d"
  "libgab_gen.a"
  "libgab_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
