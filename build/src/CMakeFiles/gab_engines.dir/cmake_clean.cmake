file(REMOVE_RECURSE
  "CMakeFiles/gab_engines.dir/engines/trace.cc.o"
  "CMakeFiles/gab_engines.dir/engines/trace.cc.o.d"
  "CMakeFiles/gab_engines.dir/engines/vertex_subset.cc.o"
  "CMakeFiles/gab_engines.dir/engines/vertex_subset.cc.o.d"
  "libgab_engines.a"
  "libgab_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
