# Empty compiler generated dependencies file for gab_engines.
# This may be replaced when dependencies are built.
