
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/trace.cc" "src/CMakeFiles/gab_engines.dir/engines/trace.cc.o" "gcc" "src/CMakeFiles/gab_engines.dir/engines/trace.cc.o.d"
  "/root/repo/src/engines/vertex_subset.cc" "src/CMakeFiles/gab_engines.dir/engines/vertex_subset.cc.o" "gcc" "src/CMakeFiles/gab_engines.dir/engines/vertex_subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
