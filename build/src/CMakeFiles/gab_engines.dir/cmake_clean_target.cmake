file(REMOVE_RECURSE
  "libgab_engines.a"
)
