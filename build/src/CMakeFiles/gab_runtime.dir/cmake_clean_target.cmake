file(REMOVE_RECURSE
  "libgab_runtime.a"
)
