file(REMOVE_RECURSE
  "CMakeFiles/gab_runtime.dir/runtime/cluster_sim.cc.o"
  "CMakeFiles/gab_runtime.dir/runtime/cluster_sim.cc.o.d"
  "CMakeFiles/gab_runtime.dir/runtime/executor.cc.o"
  "CMakeFiles/gab_runtime.dir/runtime/executor.cc.o.d"
  "CMakeFiles/gab_runtime.dir/runtime/metrics.cc.o"
  "CMakeFiles/gab_runtime.dir/runtime/metrics.cc.o.d"
  "CMakeFiles/gab_runtime.dir/runtime/stress.cc.o"
  "CMakeFiles/gab_runtime.dir/runtime/stress.cc.o.d"
  "libgab_runtime.a"
  "libgab_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
