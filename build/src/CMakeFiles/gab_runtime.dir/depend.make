# Empty dependencies file for gab_runtime.
# This may be replaced when dependencies are built.
