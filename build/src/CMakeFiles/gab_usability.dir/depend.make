# Empty dependencies file for gab_usability.
# This may be replaced when dependencies are built.
