file(REMOVE_RECURSE
  "libgab_usability.a"
)
