
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/usability/api_spec.cc" "src/CMakeFiles/gab_usability.dir/usability/api_spec.cc.o" "gcc" "src/CMakeFiles/gab_usability.dir/usability/api_spec.cc.o.d"
  "/root/repo/src/usability/codegen_sim.cc" "src/CMakeFiles/gab_usability.dir/usability/codegen_sim.cc.o" "gcc" "src/CMakeFiles/gab_usability.dir/usability/codegen_sim.cc.o.d"
  "/root/repo/src/usability/evaluator.cc" "src/CMakeFiles/gab_usability.dir/usability/evaluator.cc.o" "gcc" "src/CMakeFiles/gab_usability.dir/usability/evaluator.cc.o.d"
  "/root/repo/src/usability/framework.cc" "src/CMakeFiles/gab_usability.dir/usability/framework.cc.o" "gcc" "src/CMakeFiles/gab_usability.dir/usability/framework.cc.o.d"
  "/root/repo/src/usability/prompt.cc" "src/CMakeFiles/gab_usability.dir/usability/prompt.cc.o" "gcc" "src/CMakeFiles/gab_usability.dir/usability/prompt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
