file(REMOVE_RECURSE
  "CMakeFiles/gab_usability.dir/usability/api_spec.cc.o"
  "CMakeFiles/gab_usability.dir/usability/api_spec.cc.o.d"
  "CMakeFiles/gab_usability.dir/usability/codegen_sim.cc.o"
  "CMakeFiles/gab_usability.dir/usability/codegen_sim.cc.o.d"
  "CMakeFiles/gab_usability.dir/usability/evaluator.cc.o"
  "CMakeFiles/gab_usability.dir/usability/evaluator.cc.o.d"
  "CMakeFiles/gab_usability.dir/usability/framework.cc.o"
  "CMakeFiles/gab_usability.dir/usability/framework.cc.o.d"
  "CMakeFiles/gab_usability.dir/usability/prompt.cc.o"
  "CMakeFiles/gab_usability.dir/usability/prompt.cc.o.d"
  "libgab_usability.a"
  "libgab_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
