file(REMOVE_RECURSE
  "CMakeFiles/gab_util.dir/util/histogram.cc.o"
  "CMakeFiles/gab_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/gab_util.dir/util/status.cc.o"
  "CMakeFiles/gab_util.dir/util/status.cc.o.d"
  "CMakeFiles/gab_util.dir/util/table.cc.o"
  "CMakeFiles/gab_util.dir/util/table.cc.o.d"
  "CMakeFiles/gab_util.dir/util/threading.cc.o"
  "CMakeFiles/gab_util.dir/util/threading.cc.o.d"
  "libgab_util.a"
  "libgab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
