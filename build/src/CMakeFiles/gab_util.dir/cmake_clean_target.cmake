file(REMOVE_RECURSE
  "libgab_util.a"
)
