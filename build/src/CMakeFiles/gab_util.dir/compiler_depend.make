# Empty compiler generated dependencies file for gab_util.
# This may be replaced when dependencies are built.
