file(REMOVE_RECURSE
  "libgab_algos.a"
)
