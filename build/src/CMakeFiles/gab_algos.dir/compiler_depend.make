# Empty compiler generated dependencies file for gab_algos.
# This may be replaced when dependencies are built.
