file(REMOVE_RECURSE
  "CMakeFiles/gab_algos.dir/algos/bc.cc.o"
  "CMakeFiles/gab_algos.dir/algos/bc.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/bfs.cc.o"
  "CMakeFiles/gab_algos.dir/algos/bfs.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/core_decomposition.cc.o"
  "CMakeFiles/gab_algos.dir/algos/core_decomposition.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/kclique.cc.o"
  "CMakeFiles/gab_algos.dir/algos/kclique.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/lcc.cc.o"
  "CMakeFiles/gab_algos.dir/algos/lcc.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/lpa.cc.o"
  "CMakeFiles/gab_algos.dir/algos/lpa.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/pagerank.cc.o"
  "CMakeFiles/gab_algos.dir/algos/pagerank.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/sssp.cc.o"
  "CMakeFiles/gab_algos.dir/algos/sssp.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/triangle_count.cc.o"
  "CMakeFiles/gab_algos.dir/algos/triangle_count.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/verify.cc.o"
  "CMakeFiles/gab_algos.dir/algos/verify.cc.o.d"
  "CMakeFiles/gab_algos.dir/algos/wcc.cc.o"
  "CMakeFiles/gab_algos.dir/algos/wcc.cc.o.d"
  "libgab_algos.a"
  "libgab_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
