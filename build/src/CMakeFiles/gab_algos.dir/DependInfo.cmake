
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bc.cc" "src/CMakeFiles/gab_algos.dir/algos/bc.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/bc.cc.o.d"
  "/root/repo/src/algos/bfs.cc" "src/CMakeFiles/gab_algos.dir/algos/bfs.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/bfs.cc.o.d"
  "/root/repo/src/algos/core_decomposition.cc" "src/CMakeFiles/gab_algos.dir/algos/core_decomposition.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/core_decomposition.cc.o.d"
  "/root/repo/src/algos/kclique.cc" "src/CMakeFiles/gab_algos.dir/algos/kclique.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/kclique.cc.o.d"
  "/root/repo/src/algos/lcc.cc" "src/CMakeFiles/gab_algos.dir/algos/lcc.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/lcc.cc.o.d"
  "/root/repo/src/algos/lpa.cc" "src/CMakeFiles/gab_algos.dir/algos/lpa.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/lpa.cc.o.d"
  "/root/repo/src/algos/pagerank.cc" "src/CMakeFiles/gab_algos.dir/algos/pagerank.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/pagerank.cc.o.d"
  "/root/repo/src/algos/sssp.cc" "src/CMakeFiles/gab_algos.dir/algos/sssp.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/sssp.cc.o.d"
  "/root/repo/src/algos/triangle_count.cc" "src/CMakeFiles/gab_algos.dir/algos/triangle_count.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/triangle_count.cc.o.d"
  "/root/repo/src/algos/verify.cc" "src/CMakeFiles/gab_algos.dir/algos/verify.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/verify.cc.o.d"
  "/root/repo/src/algos/wcc.cc" "src/CMakeFiles/gab_algos.dir/algos/wcc.cc.o" "gcc" "src/CMakeFiles/gab_algos.dir/algos/wcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
