# Empty dependencies file for gab_platforms.
# This may be replaced when dependencies are built.
