file(REMOVE_RECURSE
  "libgab_platforms.a"
)
