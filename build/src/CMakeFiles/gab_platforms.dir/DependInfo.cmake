
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platforms/common.cc" "src/CMakeFiles/gab_platforms.dir/platforms/common.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/common.cc.o.d"
  "/root/repo/src/platforms/flash/flash_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/flash/flash_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/flash/flash_platform.cc.o.d"
  "/root/repo/src/platforms/grape/grape_iterative.cc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_iterative.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_iterative.cc.o.d"
  "/root/repo/src/platforms/grape/grape_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_platform.cc.o.d"
  "/root/repo/src/platforms/grape/grape_sequential.cc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_sequential.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_sequential.cc.o.d"
  "/root/repo/src/platforms/grape/grape_subgraph.cc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_subgraph.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/grape/grape_subgraph.cc.o.d"
  "/root/repo/src/platforms/graphx/graphx_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/graphx_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/graphx_platform.cc.o.d"
  "/root/repo/src/platforms/graphx/gx_iterative.cc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_iterative.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_iterative.cc.o.d"
  "/root/repo/src/platforms/graphx/gx_sequential.cc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_sequential.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_sequential.cc.o.d"
  "/root/repo/src/platforms/graphx/gx_subgraph.cc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_subgraph.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/graphx/gx_subgraph.cc.o.d"
  "/root/repo/src/platforms/gthinker/gt_subgraph.cc" "src/CMakeFiles/gab_platforms.dir/platforms/gthinker/gt_subgraph.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/gthinker/gt_subgraph.cc.o.d"
  "/root/repo/src/platforms/gthinker/gthinker_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/gthinker/gthinker_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/gthinker/gthinker_platform.cc.o.d"
  "/root/repo/src/platforms/ligra/ligra_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/ligra/ligra_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/ligra/ligra_platform.cc.o.d"
  "/root/repo/src/platforms/platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/platform.cc.o.d"
  "/root/repo/src/platforms/powergraph/pg_iterative.cc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_iterative.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_iterative.cc.o.d"
  "/root/repo/src/platforms/powergraph/pg_sequential.cc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_sequential.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_sequential.cc.o.d"
  "/root/repo/src/platforms/powergraph/pg_subgraph.cc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_subgraph.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/pg_subgraph.cc.o.d"
  "/root/repo/src/platforms/powergraph/powergraph_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/powergraph_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/powergraph/powergraph_platform.cc.o.d"
  "/root/repo/src/platforms/pregelplus/pp_iterative.cc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_iterative.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_iterative.cc.o.d"
  "/root/repo/src/platforms/pregelplus/pp_sequential.cc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_sequential.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_sequential.cc.o.d"
  "/root/repo/src/platforms/pregelplus/pp_subgraph.cc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_subgraph.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pp_subgraph.cc.o.d"
  "/root/repo/src/platforms/pregelplus/pregelplus_platform.cc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pregelplus_platform.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/pregelplus/pregelplus_platform.cc.o.d"
  "/root/repo/src/platforms/subset_kernels.cc" "src/CMakeFiles/gab_platforms.dir/platforms/subset_kernels.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/subset_kernels.cc.o.d"
  "/root/repo/src/platforms/upload.cc" "src/CMakeFiles/gab_platforms.dir/platforms/upload.cc.o" "gcc" "src/CMakeFiles/gab_platforms.dir/platforms/upload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
