file(REMOVE_RECURSE
  "CMakeFiles/gab_stats.dir/stats/community.cc.o"
  "CMakeFiles/gab_stats.dir/stats/community.cc.o.d"
  "CMakeFiles/gab_stats.dir/stats/correlation.cc.o"
  "CMakeFiles/gab_stats.dir/stats/correlation.cc.o.d"
  "CMakeFiles/gab_stats.dir/stats/divergence.cc.o"
  "CMakeFiles/gab_stats.dir/stats/divergence.cc.o.d"
  "CMakeFiles/gab_stats.dir/stats/graph_stats.cc.o"
  "CMakeFiles/gab_stats.dir/stats/graph_stats.cc.o.d"
  "libgab_stats.a"
  "libgab_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gab_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
