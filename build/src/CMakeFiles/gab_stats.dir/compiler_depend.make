# Empty compiler generated dependencies file for gab_stats.
# This may be replaced when dependencies are built.
