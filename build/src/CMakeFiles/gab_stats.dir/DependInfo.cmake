
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/community.cc" "src/CMakeFiles/gab_stats.dir/stats/community.cc.o" "gcc" "src/CMakeFiles/gab_stats.dir/stats/community.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/CMakeFiles/gab_stats.dir/stats/correlation.cc.o" "gcc" "src/CMakeFiles/gab_stats.dir/stats/correlation.cc.o.d"
  "/root/repo/src/stats/divergence.cc" "src/CMakeFiles/gab_stats.dir/stats/divergence.cc.o" "gcc" "src/CMakeFiles/gab_stats.dir/stats/divergence.cc.o.d"
  "/root/repo/src/stats/graph_stats.cc" "src/CMakeFiles/gab_stats.dir/stats/graph_stats.cc.o" "gcc" "src/CMakeFiles/gab_stats.dir/stats/graph_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
