file(REMOVE_RECURSE
  "libgab_stats.a"
)
