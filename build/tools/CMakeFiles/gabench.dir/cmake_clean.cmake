file(REMOVE_RECURSE
  "CMakeFiles/gabench.dir/gabench_cli.cc.o"
  "CMakeFiles/gabench.dir/gabench_cli.cc.o.d"
  "gabench"
  "gabench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gabench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
