# Empty compiler generated dependencies file for gabench.
# This may be replaced when dependencies are built.
