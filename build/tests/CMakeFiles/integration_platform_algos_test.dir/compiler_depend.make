# Empty compiler generated dependencies file for integration_platform_algos_test.
# This may be replaced when dependencies are built.
