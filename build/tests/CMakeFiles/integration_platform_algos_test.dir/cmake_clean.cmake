file(REMOVE_RECURSE
  "CMakeFiles/integration_platform_algos_test.dir/integration_platform_algos_test.cc.o"
  "CMakeFiles/integration_platform_algos_test.dir/integration_platform_algos_test.cc.o.d"
  "integration_platform_algos_test"
  "integration_platform_algos_test.pdb"
  "integration_platform_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_platform_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
