file(REMOVE_RECURSE
  "CMakeFiles/ldbc_compat_test.dir/ldbc_compat_test.cc.o"
  "CMakeFiles/ldbc_compat_test.dir/ldbc_compat_test.cc.o.d"
  "ldbc_compat_test"
  "ldbc_compat_test.pdb"
  "ldbc_compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbc_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
