file(REMOVE_RECURSE
  "CMakeFiles/road_network_routing.dir/road_network_routing.cpp.o"
  "CMakeFiles/road_network_routing.dir/road_network_routing.cpp.o.d"
  "road_network_routing"
  "road_network_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
