# Empty dependencies file for platform_selection.
# This may be replaced when dependencies are built.
