file(REMOVE_RECURSE
  "CMakeFiles/platform_selection.dir/platform_selection.cpp.o"
  "CMakeFiles/platform_selection.dir/platform_selection.cpp.o.d"
  "platform_selection"
  "platform_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
