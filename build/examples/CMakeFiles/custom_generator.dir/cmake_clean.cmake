file(REMOVE_RECURSE
  "CMakeFiles/custom_generator.dir/custom_generator.cpp.o"
  "CMakeFiles/custom_generator.dir/custom_generator.cpp.o.d"
  "custom_generator"
  "custom_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
