# Empty compiler generated dependencies file for custom_generator.
# This may be replaced when dependencies are built.
