
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/usability_evaluation.cpp" "examples/CMakeFiles/usability_evaluation.dir/usability_evaluation.cpp.o" "gcc" "examples/CMakeFiles/usability_evaluation.dir/usability_evaluation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gab_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_usability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
