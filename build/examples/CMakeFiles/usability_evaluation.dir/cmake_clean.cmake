file(REMOVE_RECURSE
  "CMakeFiles/usability_evaluation.dir/usability_evaluation.cpp.o"
  "CMakeFiles/usability_evaluation.dir/usability_evaluation.cpp.o.d"
  "usability_evaluation"
  "usability_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usability_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
