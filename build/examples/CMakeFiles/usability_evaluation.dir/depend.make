# Empty dependencies file for usability_evaluation.
# This may be replaced when dependencies are built.
